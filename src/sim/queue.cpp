#include "sim/queue.hpp"

namespace fatih::sim {

EnqueueResult DropTailQueue::enqueue(const Packet& p, util::SimTime /*now*/) {
  // Control-plane traffic is prioritized past the data byte limit, the way
  // deployed routers protect routing-protocol traffic (the Fatih prototype
  // ran validator exchanges over TCP for the same reason, §5.3.1). A
  // malicious router can still discard control traffic deliberately.
  if (!p.is_control() && bytes_ + p.size_bytes > limit_) return EnqueueResult::kDroppedFull;
  bytes_ += p.size_bytes;
  q_.push_back(p);
  return EnqueueResult::kAccepted;
}

void DropTailQueue::enqueue_batch(std::span<const Packet> batch, util::SimTime /*now*/,
                                  EnqueueResult* results) {
  // One capacity walk and one byte-count update for the whole batch; the
  // verdicts are exactly what per-packet enqueue would have produced in
  // the same order (admission depends only on the running byte total).
  std::size_t admitted_bytes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Packet& p = batch[i];
    if (!p.is_control() && bytes_ + admitted_bytes + p.size_bytes > limit_) {
      results[i] = EnqueueResult::kDroppedFull;
      continue;
    }
    admitted_bytes += p.size_bytes;
    q_.push_back(p);
    results[i] = EnqueueResult::kAccepted;
  }
  bytes_ += admitted_bytes;
}

std::optional<Packet> DropTailQueue::dequeue(util::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace fatih::sim
