// Discrete-event simulation engine.
//
// A single-threaded event loop ordered by simulated time. Ties are broken
// by insertion order (FIFO), which keeps runs deterministic. Everything in
// the network model — link transmissions, router processing, protocol
// round timers, TCP retransmission timers — is an event here.
//
// The engine is built for throughput: event records live in a pooled slab
// (chunked, so records never move) with free-list reuse, callbacks are
// stored inline in the record when they fit (they almost always do — the
// largest common capture is a Packet plus a pointer), and the time-ordered
// heap holds lightweight (time, seq, slot) entries. Cancellation is O(1):
// it bumps the slot's generation and leaves a stale heap entry behind,
// which dispatch skips and a lazy sweep compacts away once stale entries
// outnumber live ones — so cancel-heavy workloads (TCP timers re-armed on
// every ack) cannot grow the heap without bound. In steady state the
// schedule/dispatch cycle performs zero heap allocations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace fatih::sim {

/// Handle used to cancel a scheduled event. Encodes (generation << 32) |
/// slot; generations start at 1, so 0 is never a live id and a
/// default-initialized handle is always safe to cancel.
using EventId = std::uint64_t;

/// The event loop. Not copyable; one per experiment.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time (time of the event being processed, or of the
  /// last processed event between dispatches).
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now(); requests for
  /// the past run "now" — simulated time never moves backward). Accepts
  /// any void() callable; callables up to kInlineCallbackBytes are stored
  /// inline in the pooled event record, larger ones spill to the heap.
  template <typename F>
  EventId schedule_at(util::SimTime t, F&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t slot = acquire_slot();
    EventRecord& rec = record(slot);
    rec.at = t;
    rec.seq = next_seq_++;
    rec.armed = true;
    install_callback(rec, std::forward<F>(fn));
    heap_push(HeapEntry{t, rec.seq, slot});
    if (++in_use_ > high_water_) high_water_ = in_use_;
    return (static_cast<EventId>(rec.generation) << 32) | slot;
  }

  /// Schedules `fn` after `d` from now.
  template <typename F>
  EventId schedule_in(util::Duration d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue empties or `limit` is passed; leaves
  /// now() at min(limit, last event time). Events scheduled exactly at
  /// `limit` are executed.
  void run_until(util::SimTime limit);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events dispatched so far (for tests / sanity checks).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Observability attach points. Every layer reaches the simulator, so
  /// the trace sink and metrics registry hang here; null = disabled at
  /// runtime (instrumented call sites pay one load + branch). Prefer
  /// Network::attach_observability, which also pre-resolves the per-packet
  /// counter handles.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const { return trace_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] obs::PacketCounters& packet_counters() { return packet_counters_; }

  /// Callables at most this large (and max_align_t-aligned) are stored in
  /// the record itself. Sized to fit a lambda capturing a Packet plus a
  /// couple of words, the hot-path shape in node.cpp.
  static constexpr std::size_t kInlineCallbackBytes = 120;

  /// Pool and heap introspection: the allocation-freedom and bounded-
  /// memory guarantees are asserted against these in tests and benches.
  struct PoolStats {
    std::size_t slots_in_use = 0;      ///< currently scheduled events
    std::size_t slots_high_water = 0;  ///< max simultaneous scheduled events
    std::size_t slab_slots = 0;        ///< records ever materialized (pool capacity)
    std::size_t heap_entries = 0;      ///< live + stale entries in the time heap
    std::size_t heap_capacity = 0;     ///< reserved heap storage
    std::uint64_t heap_sweeps = 0;     ///< lazy compactions of stale entries
    std::uint64_t callback_heap_allocs = 0;  ///< callables that spilled to the heap
  };
  [[nodiscard]] PoolStats pool_stats() const {
    return PoolStats{in_use_,         high_water_, slot_count_,       heap_.size(),
                     heap_.capacity(), sweeps_,     cb_heap_allocs_};
  }

 private:
  // Manual dispatch so a record can hold any callable without std::function
  // overhead. `fire` relocates the callable out of the record, frees the
  // slot (so the callback may immediately schedule into it), then invokes —
  // one indirect call total, with the move/invoke/destroy sequence inlined
  // inside it. `destroy` is the cancellation path.
  struct CallbackVTable {
    void (*fire)(Simulator& sim, std::uint32_t slot, void* p);
    void (*destroy)(void* p);  ///< inline: dtor; heap: delete
  };

  template <typename D>
  static void fire_inline(Simulator& sim, std::uint32_t slot, void* p) {
    D fn(std::move(*static_cast<D*>(p)));
    static_cast<D*>(p)->~D();
    sim.release_slot(slot);
    fn();
  }
  template <typename D>
  static void fire_heap(Simulator& sim, std::uint32_t slot, void* p) {
    sim.release_slot(slot);
    D* fn = static_cast<D*>(p);
    (*fn)();
    delete fn;
  }

  template <typename D>
  static constexpr CallbackVTable kInlineVTable{
      &fire_inline<D>,
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr CallbackVTable kHeapVTable{
      &fire_heap<D>,
      [](void* p) { delete static_cast<D*>(p); },
  };

  struct EventRecord {
    util::SimTime at;
    std::uint64_t seq = 0;           ///< FIFO tie-break; also staleness check
    std::uint32_t generation = 1;    ///< bumped on release; validates EventIds
    std::uint32_t next_free = 0;     ///< free-list link
    bool armed = false;              ///< scheduled and not yet fired/cancelled
    const CallbackVTable* vt = nullptr;
    void* heap = nullptr;            ///< non-null when the callable spilled
    alignas(std::max_align_t) unsigned char inline_buf[kInlineCallbackBytes];
  };

  struct HeapEntry {
    util::SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Dispatch order: time, then FIFO seq — same as the seed engine.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkSlots = 256;

  [[nodiscard]] EventRecord& record(std::uint32_t slot) {
    return chunks_[slot / kChunkSlots][slot % kChunkSlots];
  }
  [[nodiscard]] const EventRecord& record(std::uint32_t slot) const {
    return chunks_[slot / kChunkSlots][slot % kChunkSlots];
  }

  template <typename F>
  void install_callback(EventRecord& rec, F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>, "event callback must be callable with no args");
    if constexpr (sizeof(D) <= kInlineCallbackBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(rec.inline_buf)) D(std::forward<F>(fn));
      rec.vt = &kInlineVTable<D>;
      rec.heap = nullptr;
    } else {
      rec.heap = new D(std::forward<F>(fn));
      rec.vt = &kHeapVTable<D>;
      ++cb_heap_allocs_;
    }
  }

  // Hot-path helpers are inline (no LTO in the default build): one slab
  // grow aside, schedule/dispatch must not leave the translation unit.
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ == kNilSlot) grow_slab();
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next_free;
    return slot;
  }
  void release_slot(std::uint32_t slot) {
    EventRecord& rec = record(slot);
    rec.armed = false;
    ++rec.generation;  // invalidates any outstanding EventId for this slot
    rec.vt = nullptr;
    rec.heap = nullptr;
    rec.next_free = free_head_;
    free_head_ = slot;
    --in_use_;
  }
  // The time-ordered queue is a hand-rolled 4-ary min-heap: half the sift
  // depth of a binary heap and all four children on one pair of cache
  // lines, which measures noticeably faster than std::push_heap/pop_heap
  // once hundreds of events are pending.
  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  /// Re-seats `v` starting at hole `i` (used by pop and the sweep rebuild).
  void heap_sift_down(std::size_t i, HeapEntry v) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], v)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = v;
  }
  void heap_pop() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0, last);
  }

  void grow_slab();
  void destroy_callback(EventRecord& rec);
  void maybe_sweep();

  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;

  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::PacketCounters packet_counters_;

  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::uint32_t slot_count_ = 0;   ///< slots materialized across all chunks
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t cb_heap_allocs_ = 0;

  std::vector<HeapEntry> heap_;
  std::size_t stale_ = 0;   ///< cancelled entries still parked in heap_
  std::uint64_t sweeps_ = 0;
};

}  // namespace fatih::sim
