// Discrete-event simulation engine.
//
// A single-threaded event loop ordered by simulated time. Ties are broken
// by insertion order (FIFO), which keeps runs deterministic. Everything in
// the network model — link transmissions, router processing, protocol
// round timers, TCP retransmission timers — is an event here.
//
// The engine is built for throughput: event records live in a pooled slab
// (chunked, so records never move) with free-list reuse, callbacks are
// stored inline in the record when they fit (they almost always do — the
// largest common capture is a Packet plus a pointer), and the pending
// queue holds lightweight packed (time, seq|slot) entries in two tiers: a
// sorted near-horizon vector consumed through a cursor (the common case —
// hot-path events are scheduled microseconds out) backed by a 4-ary min-
// heap for everything beyond the horizon. Cancellation is O(1):
// it bumps the slot's generation and leaves a stale heap entry behind,
// which dispatch skips and a lazy sweep compacts away once stale entries
// outnumber live ones — so cancel-heavy workloads (TCP timers re-armed on
// every ack) cannot grow the heap without bound. In steady state the
// schedule/dispatch cycle performs zero heap allocations.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace fatih::sim {

class ShardLane;  // cross-PoP handoff buffer (src/sim/shard.hpp)

/// Handle used to cancel a scheduled event. Encodes (generation << 32) |
/// slot; generations start at 1, so 0 is never a live id and a
/// default-initialized handle is always safe to cancel.
using EventId = std::uint64_t;

/// The event loop. Not copyable; one per experiment.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time (time of the event being processed, or of the
  /// last processed event between dispatches).
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now(); requests for
  /// the past run "now" — simulated time never moves backward). Accepts
  /// any void() callable; callables up to kInlineCallbackBytes are stored
  /// inline in the pooled event record, larger ones spill to the heap.
  template <typename F>
  EventId schedule_at(util::SimTime t, F&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t slot = acquire_slot();
    EventRecord& rec = record(slot);
    rec.at = t;
    rec.seq = next_seq_++;
    rec.armed = true;
    assert(rec.seq < kMaxSeq);
    install_callback(rec, std::forward<F>(fn));
    push_entry(HeapEntry{t, pack_key(rec.seq, slot)});
    if (++in_use_ > high_water_) high_water_ = in_use_;
    return (static_cast<EventId>(rec.generation) << 32) | slot;
  }

  /// Schedules `fn` after `d` from now.
  template <typename F>
  EventId schedule_in(util::Duration d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Constructs callable `D` from `args` DIRECTLY in the event record —
  /// no temporary, no move. A lambda passed to schedule_at is built on the
  /// caller's stack and then moved into the record; for the forwarding
  /// hot path that move is a Packet-sized memcpy per event, twice per
  /// hop. Named functor types (node.cpp's transmit/processing events) use
  /// this to skip it. `D` must fit the inline buffer; that is a
  /// compile-time property of the type, so no heap spill branch either.
  template <typename D, typename... Args>
  EventId schedule_emplace_in(util::Duration d, Args&&... args) {
    static_assert(sizeof(D) <= kInlineCallbackBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>,
                  "emplaced event callables must fit the inline record buffer");
    util::SimTime t = now_ + d;
    if (t < now_) t = now_;  // same past-clamp as schedule_at
    const std::uint32_t slot = acquire_slot();
    EventRecord& rec = record(slot);
    rec.at = t;
    rec.seq = next_seq_++;
    rec.armed = true;
    assert(rec.seq < kMaxSeq);
    ::new (static_cast<void*>(rec.inline_buf)) D(std::forward<Args>(args)...);
    rec.vt = &kInlineVTable<D>;
    rec.heap = nullptr;
    push_entry(HeapEntry{t, pack_key(rec.seq, slot)});
    if (++in_use_ > high_water_) high_water_ = in_use_;
    return (static_cast<EventId>(rec.generation) << 32) | slot;
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Reschedules the event currently being fired — callable and storage
  /// preserved, no destroy / free / re-install cycle. Valid only from
  /// inside an event callback, applies to that callback's own event, and
  /// may be called at most once per firing. The new event gets the next
  /// seq, exactly as a fresh schedule_in from the same point would: the
  /// dispatch order is indistinguishable from schedule_in, only the slot
  /// churn disappears. This is the backbone of the multi-stage hot-path
  /// callbacks in node.cpp (serialization -> propagation) and the
  /// self-rescheduling traffic sources.
  EventId rearm_current(util::Duration d) {
    const std::uint32_t slot = firing_slot_;
    EventRecord& rec = record(slot);
    rec.at = now_ + d;
    rec.seq = next_seq_++;
    rec.armed = true;  // tells the firing wrapper to skip destroy/free
    assert(rec.seq < kMaxSeq);
    push_entry(HeapEntry{rec.at, pack_key(rec.seq, slot)});
    return (static_cast<EventId>(rec.generation) << 32) | slot;
  }

  /// Runs events until the queue empties or `limit` is passed; leaves
  /// now() at min(limit, last event time). Events scheduled exactly at
  /// `limit` are executed.
  void run_until(util::SimTime limit);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events dispatched so far (for tests / sanity checks).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// True when any pending entry remains in either tier. Cancelled
  /// tombstones count: the sharded window scheduler only needs a
  /// conservative lower bound on the next dispatch time, and tombstone
  /// placement is itself deterministic, so including them keeps the
  /// window grid identical at every worker count.
  [[nodiscard]] bool has_pending() const {
    return near_head_ < near_.size() || !heap_.empty();
  }
  /// Earliest pending entry time (tombstones included, same conservative
  /// contract as has_pending). O(1): the near tier is sorted and always
  /// earlier than the far heap. Requires has_pending().
  [[nodiscard]] util::SimTime next_event_time() const {
    return near_head_ < near_.size() ? near_[near_head_].at : heap_.front().at;
  }

  /// Cross-PoP handoff lane for the sharded engine; null in the classic
  /// single-simulator engine, which changes nothing on the hot path beyond
  /// one pointer test on cross-PoP sends and control deliveries.
  void set_shard_lane(ShardLane* lane) { shard_lane_ = lane; }
  [[nodiscard]] ShardLane* shard_lane() const { return shard_lane_; }

  /// Order-independent FNV fingerprint of the live pending queue: every
  /// armed (time, seq|slot) entry across both tiers, folded in (at, key)
  /// order. Two simulators that will dispatch the same future events —
  /// regardless of near/far placement or stale-entry debris — fingerprint
  /// identically; checkpoint digests use this to pin the event-queue
  /// state without serializing callables.
  [[nodiscard]] std::uint64_t pending_fingerprint() const;

  /// Observability attach points. Every layer reaches the simulator, so
  /// the trace sink and metrics registry hang here; null = disabled at
  /// runtime (instrumented call sites pay one load + branch). Prefer
  /// Network::attach_observability, which also pre-resolves the per-packet
  /// counter handles.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const { return trace_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] obs::PacketCounters& packet_counters() { return packet_counters_; }

  /// Callables at most this large (and max_align_t-aligned) are stored in
  /// the record itself. Sized to fit a lambda capturing a Packet plus a
  /// couple of words, the hot-path shape in node.cpp.
  static constexpr std::size_t kInlineCallbackBytes = 120;

  /// Pool and heap introspection: the allocation-freedom and bounded-
  /// memory guarantees are asserted against these in tests and benches.
  struct PoolStats {
    std::size_t slots_in_use = 0;      ///< currently scheduled events
    std::size_t slots_high_water = 0;  ///< max simultaneous scheduled events
    std::size_t slab_slots = 0;        ///< records ever materialized (pool capacity)
    std::size_t heap_entries = 0;      ///< live + stale entries pending (near + far)
    std::size_t heap_capacity = 0;     ///< reserved queue storage (near + far)
    std::uint64_t heap_sweeps = 0;     ///< lazy compactions of stale entries
    std::uint64_t callback_heap_allocs = 0;  ///< callables that spilled to the heap
  };
  [[nodiscard]] PoolStats pool_stats() const {
    return PoolStats{in_use_,
                     high_water_,
                     slot_count_,
                     heap_.size() + (near_.size() - near_head_),
                     heap_.capacity() + near_.capacity(),
                     sweeps_,
                     cb_heap_allocs_};
  }

 private:
  // Manual dispatch so a record can hold any callable without std::function
  // overhead. `fire` invokes the callable IN PLACE: the record is marked
  // dead first (armed cleared, generation bumped, so a cancel from inside
  // the callback is a no-op) but its slot joins the free list only after
  // the invocation returns. A callback that schedules therefore picks a
  // different slot and can never clobber its own captures mid-flight —
  // and the hot path skips relocating the callable (a Packet-sized move
  // per event) entirely. `destroy` is the cancellation path.
  struct CallbackVTable {
    void (*fire)(Simulator& sim, std::uint32_t slot, void* p);
    void (*destroy)(void* p);  ///< inline: dtor; heap: delete
  };

  template <typename D>
  static void fire_inline(Simulator& sim, std::uint32_t slot, void* p) {
    sim.begin_fire(slot);
    D* fn = static_cast<D*>(p);
    (*fn)();
    if (sim.record(slot).armed) return;  // rearm_current: callable lives on
    fn->~D();
    sim.finish_fire(slot);
  }
  template <typename D>
  static void fire_heap(Simulator& sim, std::uint32_t slot, void* p) {
    sim.begin_fire(slot);
    D* fn = static_cast<D*>(p);
    (*fn)();
    if (sim.record(slot).armed) return;  // rearm_current: callable lives on
    delete fn;
    sim.finish_fire(slot);
  }

  template <typename D>
  static constexpr CallbackVTable kInlineVTable{
      &fire_inline<D>,
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr CallbackVTable kHeapVTable{
      &fire_heap<D>,
      [](void* p) { delete static_cast<D*>(p); },
  };

  struct EventRecord {
    util::SimTime at;
    std::uint64_t seq = 0;           ///< FIFO tie-break; also staleness check
    std::uint32_t generation = 1;    ///< bumped on release; validates EventIds
    std::uint32_t next_free = 0;     ///< free-list link
    bool armed = false;              ///< scheduled and not yet fired/cancelled
    const CallbackVTable* vt = nullptr;
    void* heap = nullptr;            ///< non-null when the callable spilled
    alignas(std::max_align_t) unsigned char inline_buf[kInlineCallbackBytes];
  };

  /// 16 bytes so four children of the 4-ary heap share one cache line:
  /// `key` packs (seq << kSlotBits) | slot. Seqs are unique, so ordering
  /// by key equals ordering by seq — the tie-break is unchanged — and the
  /// slot rides along for free. 24 slot bits cap the pool at 16.7M
  /// concurrent events (a ~3 GB slab, far past any workload here); 40 seq
  /// bits cap a run at ~10^12 scheduled events, asserted in schedule_at.
  struct HeapEntry {
    util::SimTime at;
    std::uint64_t key;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);
  static std::uint64_t pack_key(std::uint64_t seq, std::uint32_t slot) {
    return (seq << kSlotBits) | slot;
  }
  /// Dispatch order: time, then FIFO seq — same as the seed engine.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkSlots = 256;

  [[nodiscard]] EventRecord& record(std::uint32_t slot) {
    return chunks_[slot / kChunkSlots][slot % kChunkSlots];
  }
  [[nodiscard]] const EventRecord& record(std::uint32_t slot) const {
    return chunks_[slot / kChunkSlots][slot % kChunkSlots];
  }

  template <typename F>
  void install_callback(EventRecord& rec, F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>, "event callback must be callable with no args");
    if constexpr (sizeof(D) <= kInlineCallbackBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(rec.inline_buf)) D(std::forward<F>(fn));
      rec.vt = &kInlineVTable<D>;
      rec.heap = nullptr;
    } else {
      rec.heap = new D(std::forward<F>(fn));
      rec.vt = &kHeapVTable<D>;
      ++cb_heap_allocs_;
    }
  }

  // Hot-path helpers are inline (no LTO in the default build): one slab
  // grow aside, schedule/dispatch must not leave the translation unit.
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ == kNilSlot) grow_slab();
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next_free;
    return slot;
  }
  void release_slot(std::uint32_t slot) {
    begin_fire(slot);
    finish_fire(slot);
  }
  /// First half of dispatch: the record is dead to cancels and EventIds,
  /// but its storage (holding the executing callable) is not reusable yet.
  void begin_fire(std::uint32_t slot) {
    EventRecord& rec = record(slot);
    rec.armed = false;
    ++rec.generation;  // invalidates any outstanding EventId for this slot
  }
  /// Second half: the callable is destroyed, the slot rejoins the pool.
  void finish_fire(std::uint32_t slot) {
    EventRecord& rec = record(slot);
    rec.vt = nullptr;
    rec.heap = nullptr;
    rec.next_free = free_head_;
    free_head_ = slot;
    --in_use_;
  }
  // The pending queue is split in two by a moving time horizon. Entries
  // due before `near_horizon_` live in `near_`, a sorted vector consumed
  // through a cursor: dispatch is a bounds check plus an increment, and
  // insertion is a binary search over the short live span. Entries at or
  // past the horizon go to the far heap. The forwarding hot path schedules
  // almost exclusively a few microseconds out — inside the horizon — so
  // those events never touch the heap at all. Correctness: the horizon
  // only moves when `near_` is exhausted, far entries are always >= the
  // horizon, and near inserts land in (at, key) order, so the global
  // dispatch order is the same (at, seq) total order as a single heap.
  void push_entry(HeapEntry e) {
    if (e.at < near_horizon_) {
      // Reclaim the consumed prefix before it dominates the vector; the
      // memmove is amortized over the >=1024 events already dispatched.
      if (near_head_ >= 1024 && near_head_ * 2 >= near_.size()) {
        near_.erase(near_.begin(), near_.begin() + static_cast<std::ptrdiff_t>(near_head_));
        near_head_ = 0;
      }
      near_.insert(std::upper_bound(near_.begin() + static_cast<std::ptrdiff_t>(near_head_),
                                    near_.end(), e, before),
                   e);
    } else {
      heap_push(e);
    }
  }
  /// Refills `near_` from the far heap when the cursor runs off the end.
  /// Returns false when no pending entries remain anywhere.
  bool advance_near();

  // The far queue is a hand-rolled 4-ary min-heap: half the sift
  // depth of a binary heap and all four children on one pair of cache
  // lines, which measures noticeably faster than std::push_heap/pop_heap
  // once hundreds of events are pending.
  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  /// Re-seats `v` starting at hole `i` (used by pop and the sweep rebuild).
  void heap_sift_down(std::size_t i, HeapEntry v) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], v)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = v;
  }
  /// Pop uses Floyd's bottom-up variant: walk the hole down along min
  /// children (children-only compares), then bubble the displaced last
  /// element back up. The last element of a min-heap almost always belongs
  /// near the leaves, so the bubble-up usually takes zero or one steps —
  /// cheaper than comparing it at every level on the way down. The pop
  /// ORDER is unchanged either way: it is fully determined by the (at,
  /// seq) total order, not by the internal array arrangement.
  void heap_pop() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(last, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }

  void grow_slab();
  void destroy_callback(EventRecord& rec);
  void maybe_sweep();

  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  /// Slot of the event currently being fired (rearm_current target); only
  /// run_until writes it, so nested schedules/cancels cannot clobber it.
  std::uint32_t firing_slot_ = kNilSlot;

  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::PacketCounters packet_counters_;
  ShardLane* shard_lane_ = nullptr;

  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::uint32_t slot_count_ = 0;   ///< slots materialized across all chunks
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t cb_heap_allocs_ = 0;

  std::vector<HeapEntry> heap_;
  std::size_t stale_ = 0;   ///< cancelled entries still parked in near_/heap_
  std::uint64_t sweeps_ = 0;

  /// Near-horizon staging: entries due before `near_horizon_` sorted by
  /// (at, key), consumed from `near_head_`. The window adapts so a refill
  /// migrates a small batch — wide enough to catch hot-path schedules,
  /// narrow enough that a migration stays cheap.
  std::vector<HeapEntry> near_;
  std::size_t near_head_ = 0;
  util::SimTime near_horizon_;          ///< default origin(): everything far until first run
  std::int64_t near_window_ns_ = 128 * 1000;
};

}  // namespace fatih::sim
