// Discrete-event simulation engine.
//
// A single-threaded event loop ordered by simulated time. Ties are broken
// by insertion order (FIFO), which keeps runs deterministic. Everything in
// the network model — link transmissions, router processing, protocol
// round timers, TCP retransmission timers — is an event here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace fatih::sim {

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

/// The event loop. Not copyable; one per experiment.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (time of the event being processed, or of the
  /// last processed event between dispatches).
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(util::SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `d` from now.
  EventId schedule_in(util::Duration d, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue empties or `limit` is passed; leaves
  /// now() at min(limit, last event time). Events scheduled exactly at
  /// `limit` are executed.
  void run_until(util::SimTime limit);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events dispatched so far (for tests / sanity checks).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    util::SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    EventId id;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  // Callbacks keyed by id; erased on dispatch or cancel. A cancelled event
  // leaves a tombstone in queue_ that is skipped at dispatch time.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace fatih::sim
