// Scripted topology-churn injector.
//
// Experiments describe failures declaratively — one-shot link cuts,
// periodic flaps, router crash/restart, correlated SRLG (shared-risk link
// group) failures — and arm() turns the script into simulator events
// against a Network. The schedule also exports the churn intervals it
// induces so the spec layer (GroundTruth) can exempt reconvergence
// transients from the a-Accuracy check.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/network.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::sim {

/// One scripted churn event (already expanded: flaps and SRLG groups
/// become several of these).
struct ChurnEvent {
  enum class Kind { kLinkDown, kLinkUp, kRouterCrash, kRouterRestart };
  Kind kind = Kind::kLinkDown;
  util::SimTime at{};
  util::NodeId a = 0;  ///< link endpoint / router id
  util::NodeId b = 0;  ///< link endpoint (unused for router events)
};

/// Builder for a deterministic churn script. All times are absolute sim
/// times; arming twice (or on two networks) replays the same script.
class ChurnSchedule {
 public:
  /// One-shot failure / repair of the duplex link a—b.
  ChurnSchedule& link_down(util::NodeId a, util::NodeId b, util::SimTime at);
  ChurnSchedule& link_up(util::NodeId a, util::NodeId b, util::SimTime at);

  /// Periodic flap: the link goes down at `first_down`, comes back after
  /// `down_for`, and repeats every `period` for `count` cycles.
  ChurnSchedule& link_flap(util::NodeId a, util::NodeId b, util::SimTime first_down,
                           util::Duration down_for, util::Duration period, std::size_t count);

  /// Router crash (optionally followed by a restart).
  ChurnSchedule& router_crash(util::NodeId id, util::SimTime at);
  ChurnSchedule& router_restart(util::NodeId id, util::SimTime at);

  /// Correlated failure: every link in the shared-risk group fails at the
  /// same instant (fiber-cut model); repaired together at `up_at` if
  /// `up_at > at`.
  ChurnSchedule& srlg(const std::vector<std::pair<util::NodeId, util::NodeId>>& links,
                      util::SimTime at, util::SimTime up_at = util::SimTime::origin());

  /// Schedules every scripted event on the network's simulator.
  void arm(Network& net) const;

  /// The intervals during which the topology is perturbed, for
  /// GroundTruth::mark_churn. Each failure event opens an interval that
  /// closes `settle` after the matching repair (or at `horizon` if the
  /// failure is never repaired); `settle` should cover detection of the
  /// failure plus SPF reconvergence.
  [[nodiscard]] std::vector<util::TimeInterval> churn_intervals(util::Duration settle,
                                                               util::SimTime horizon) const;

  [[nodiscard]] const std::vector<ChurnEvent>& events() const { return events_; }

 private:
  std::vector<ChurnEvent> events_;
};

}  // namespace fatih::sim
