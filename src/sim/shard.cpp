// Sharded engine runtime. This is the one translation unit in the tree
// allowed to touch raw threading primitives (fatih-lint R9): the worker
// pool, its generation barrier, and the window loop live here.
#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "sim/network.hpp"
#include "util/hash.hpp"

namespace fatih::sim {

namespace {

/// Arrival stage of a lane-delivered cross-PoP packet; a named functor so
/// the barrier install emplaces it into the destination simulator's event
/// record without a Packet-sized move, same as the hot-path events.
struct DeliveryEvent {
  Interface* iface = nullptr;
  std::uint64_t epoch = 0;
  Packet p{};

  void operator()() { iface->complete_propagation(std::move(p), epoch); }
};

}  // namespace

/// Worker-pool state. A generation counter keyed start barrier: the
/// coordinator bumps `gen` under the mutex and wakes everyone; workers run
/// their PoP set for that generation and decrement `running`; the
/// coordinator waits for zero. The mutex acquire/release pairs give the
/// lanes their happens-before edges — the lanes themselves are
/// single-writer per PoP and need no further synchronization.
struct ShardEngine::Pool {
  std::mutex m;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t gen = 0;
  unsigned running = 0;
  util::SimTime w_last;
  bool stop = false;
  std::vector<std::thread> threads;
};

ShardEngine::ShardEngine(Network& net, unsigned workers)
    : net_(net),
      workers_(std::max(1u, std::min(workers, net.pop_count()))),
      lanes_(net.pop_count()) {
  assert(net_.sharded());
  for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) {
    net_.pop_sim(pop).set_shard_lane(&lanes_[pop]);
  }
  if (workers_ > 1) {
    pool_ = std::make_unique<Pool>();
    for (unsigned w = 1; w < workers_; ++w) {
      pool_->threads.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardEngine::~ShardEngine() {
  if (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      pool_->stop = true;
    }
    pool_->cv_start.notify_all();
    for (std::thread& t : pool_->threads) t.join();
  }
  for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) {
    net_.pop_sim(pop).set_shard_lane(nullptr);
  }
}

void ShardEngine::run_pops_of_worker(unsigned worker, util::SimTime w_last) {
  for (std::uint32_t pop = worker; pop < net_.pop_count(); pop += workers_) {
    net_.pop_sim(pop).run_until(w_last);
  }
}

void ShardEngine::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    util::SimTime w_last;
    {
      std::unique_lock<std::mutex> lk(pool_->m);
      pool_->cv_start.wait(lk, [&] { return pool_->stop || pool_->gen != seen; });
      if (pool_->stop) return;
      seen = pool_->gen;
      w_last = pool_->w_last;
    }
    run_pops_of_worker(worker, w_last);
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      if (--pool_->running == 0) pool_->cv_done.notify_one();
    }
  }
}

void ShardEngine::parallel_pass(util::SimTime w_last) {
  if (pool_ == nullptr) {
    run_pops_of_worker(0, w_last);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(pool_->m);
    pool_->w_last = w_last;
    pool_->running = workers_ - 1;
    ++pool_->gen;
  }
  pool_->cv_start.notify_all();
  run_pops_of_worker(0, w_last);
  std::unique_lock<std::mutex> lk(pool_->m);
  pool_->cv_done.wait(lk, [&] { return pool_->running == 0; });
}

void ShardEngine::drain_lanes() {
  // Data handoffs: ascending source PoP, emissions in order. The install
  // sequence imprints ascending FIFO seqs at each destination simulator,
  // so same-time cross-PoP arrivals dispatch in the fixed (time, source
  // shard, emission seq) merge order regardless of worker count.
  for (ShardLane& lane : lanes_) {
    for (ShardLane::DataHandoff& h : lane.data()) {
      Simulator& dest = net_.node_sim(h.iface->peer());
      assert(h.at >= dest.now());
      dest.schedule_at(h.at, DeliveryEvent{h.iface, h.epoch, std::move(h.p)});
    }
    lane.data().clear();
    for (ShardLane::ControlHandoff& h : lane.control()) {
      control_scratch_.push_back(std::move(h));
    }
    lane.control().clear();
  }
  // Control deliveries: stable sort by time over the PoP-ordered
  // concatenation = canonical (time, PoP, emission) replay order. Sinks
  // see the recorded delivery time; anything they originate lands on the
  // (already quiesced) PoP simulators as future work.
  std::stable_sort(
      control_scratch_.begin(), control_scratch_.end(),
      [](const ShardLane::ControlHandoff& a, const ShardLane::ControlHandoff& b) {
        return a.at < b.at;
      });
  for (ShardLane::ControlHandoff& h : control_scratch_) {
    h.node->deliver_control_direct(h.p, h.prev, h.at);
  }
  control_scratch_.clear();
}

void ShardEngine::run_until(util::SimTime limit) {
  Simulator& control = net_.sim();
  const util::Duration lookahead = net_.plan().lookahead;
  for (;;) {
    // Global earliest pending event across every simulator (tombstone-
    // inclusive lower bound; see Simulator::next_event_time).
    bool any = false;
    util::SimTime t_min;
    const auto consider = [&](Simulator& s) {
      if (!s.has_pending()) return;
      const util::SimTime t = s.next_event_time();
      if (!any || t < t_min) {
        t_min = t;
        any = true;
      }
    };
    consider(control);
    for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) consider(net_.pop_sim(pop));
    if (!any || t_min > limit) break;

    // Window [t_min, w_end): every event strictly before w_end is safe to
    // run because no cross-PoP effect of this window can arrive before
    // t_min + lookahead >= w_end. Capped at limit + 1ns so events exactly
    // at `limit` still run (run_until is inclusive).
    util::SimTime w_end = t_min + lookahead;
    const util::SimTime cap = limit + util::Duration::nanos(1);
    if (w_end > cap) w_end = cap;
    const util::SimTime w_last = w_end - util::Duration::nanos(1);

    parallel_pass(w_last);
    drain_lanes();
    control.run_until(w_last);
  }
  // Nothing pending at or before `limit`: advance every clock to it.
  for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) {
    net_.pop_sim(pop).run_until(limit);
  }
  control.run_until(limit);
}

std::uint64_t ShardEngine::total_dispatched() const {
  std::uint64_t total = net_.sim().events_dispatched();
  for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) {
    total += net_.pop_sim(pop).events_dispatched();
  }
  return total;
}

std::uint64_t ShardEngine::pending_fingerprint() const {
  std::uint64_t h = util::fnv1a64_word(util::kFnvOffsetBasis,
                                       net_.sim().pending_fingerprint());
  for (std::uint32_t pop = 0; pop < net_.pop_count(); ++pop) {
    h = util::fnv1a64_word(h, net_.pop_sim(pop).pending_fingerprint());
  }
  return h;
}

}  // namespace fatih::sim
