#include "sim/red.hpp"

#include <algorithm>
#include <cmath>

namespace fatih::sim {

double RedState::on_arrival(const RedParams& params, std::size_t queue_bytes, util::SimTime now) {
  if (idle_) {
    // Decay the average across the idle period as if `m` small packets had
    // drained through an empty queue (Floyd-Jacobson idle handling).
    const double idle_seconds = std::max(0.0, (now - idle_since_).to_seconds());
    const double pkt_time = params.mean_packet_size / params.drain_rate;
    const double m = pkt_time > 0 ? idle_seconds / pkt_time : 0.0;
    avg_ *= std::pow(1.0 - params.weight, m);
    idle_ = false;
  }
  avg_ += params.weight * (static_cast<double>(queue_bytes) - avg_);

  double pb;
  if (avg_ < params.min_threshold) {
    count_ = -1;
    return 0.0;
  }
  if (avg_ < params.max_threshold) {
    pb = params.max_probability * (avg_ - params.min_threshold) /
         (params.max_threshold - params.min_threshold);
  } else if (params.gentle && avg_ < 2 * params.max_threshold) {
    pb = params.max_probability +
         (1.0 - params.max_probability) * (avg_ - params.max_threshold) / params.max_threshold;
  } else {
    count_ = 0;
    return 1.0;
  }
  ++count_;
  // p_a = p_b / (1 - count * p_b): spreads drops uniformly over the
  // inter-drop interval.
  const double denom = 1.0 - static_cast<double>(count_) * pb;
  const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
  return pa;
}

void RedState::on_outcome(bool dropped) {
  if (dropped) count_ = 0;
}

void RedState::on_queue_empty(util::SimTime now) {
  idle_ = true;
  idle_since_ = now;
}

EnqueueResult RedQueue::enqueue(const Packet& p, util::SimTime now) {
  if (p.is_control()) {
    // Prioritized past RED and the byte limit, as in DropTailQueue.
    bytes_ += p.size_bytes;
    q_.push_back(p);
    return EnqueueResult::kAccepted;
  }
  const double pa = state_.on_arrival(params_, bytes_, now);
  const bool early_drop = pa > 0.0 && rng_.bernoulli(pa);
  if (early_drop) {
    state_.on_outcome(true);
    return EnqueueResult::kDroppedRedEarly;
  }
  state_.on_outcome(false);
  if (bytes_ + p.size_bytes > params_.byte_limit) {
    return EnqueueResult::kDroppedFull;
  }
  bytes_ += p.size_bytes;
  q_.push_back(p);
  return EnqueueResult::kAccepted;
}

std::optional<Packet> RedQueue::dequeue(util::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  if (q_.empty()) state_.on_queue_empty(now);
  return p;
}

}  // namespace fatih::sim
