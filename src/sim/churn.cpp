#include "sim/churn.hpp"

#include <algorithm>
#include <map>

namespace fatih::sim {

ChurnSchedule& ChurnSchedule::link_down(util::NodeId a, util::NodeId b, util::SimTime at) {
  events_.push_back({ChurnEvent::Kind::kLinkDown, at, a, b});
  return *this;
}

ChurnSchedule& ChurnSchedule::link_up(util::NodeId a, util::NodeId b, util::SimTime at) {
  events_.push_back({ChurnEvent::Kind::kLinkUp, at, a, b});
  return *this;
}

ChurnSchedule& ChurnSchedule::link_flap(util::NodeId a, util::NodeId b, util::SimTime first_down,
                                        util::Duration down_for, util::Duration period,
                                        std::size_t count) {
  util::SimTime down_at = first_down;
  for (std::size_t i = 0; i < count; ++i) {
    link_down(a, b, down_at);
    link_up(a, b, down_at + down_for);
    down_at = down_at + period;
  }
  return *this;
}

ChurnSchedule& ChurnSchedule::router_crash(util::NodeId id, util::SimTime at) {
  events_.push_back({ChurnEvent::Kind::kRouterCrash, at, id, id});
  return *this;
}

ChurnSchedule& ChurnSchedule::router_restart(util::NodeId id, util::SimTime at) {
  events_.push_back({ChurnEvent::Kind::kRouterRestart, at, id, id});
  return *this;
}

ChurnSchedule& ChurnSchedule::srlg(
    const std::vector<std::pair<util::NodeId, util::NodeId>>& links, util::SimTime at,
    util::SimTime up_at) {
  for (const auto& [a, b] : links) {
    link_down(a, b, at);
    if (up_at > at) link_up(a, b, up_at);
  }
  return *this;
}

void ChurnSchedule::arm(Network& net) const {
  for (const auto& ev : events_) {
    net.sim().schedule_at(ev.at, [&net, ev] {
      switch (ev.kind) {
        case ChurnEvent::Kind::kLinkDown:
          net.set_link_up(ev.a, ev.b, false);
          break;
        case ChurnEvent::Kind::kLinkUp:
          net.set_link_up(ev.a, ev.b, true);
          break;
        case ChurnEvent::Kind::kRouterCrash:
          net.crash_router(ev.a);
          break;
        case ChurnEvent::Kind::kRouterRestart:
          net.restart_router(ev.a);
          break;
      }
    });
  }
}

std::vector<util::TimeInterval> ChurnSchedule::churn_intervals(util::Duration settle,
                                                               util::SimTime horizon) const {
  // Pair each failure with the next repair of the same element, in time
  // order; unrepaired failures stay open until the horizon.
  std::vector<ChurnEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ChurnEvent& x, const ChurnEvent& y) { return x.at < y.at; });

  const auto element_key = [](const ChurnEvent& ev) -> std::uint64_t {
    if (ev.kind == ChurnEvent::Kind::kRouterCrash || ev.kind == ChurnEvent::Kind::kRouterRestart) {
      return (static_cast<std::uint64_t>(1) << 63) | ev.a;
    }
    auto a = ev.a, b = ev.b;
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  std::vector<util::TimeInterval> out;
  std::map<std::uint64_t, util::SimTime> open;  // element -> failure time
  for (const auto& ev : sorted) {
    const bool failure = ev.kind == ChurnEvent::Kind::kLinkDown ||
                         ev.kind == ChurnEvent::Kind::kRouterCrash;
    const auto key = element_key(ev);
    if (failure) {
      open.emplace(key, ev.at);  // keep the earliest open failure
    } else if (auto it = open.find(key); it != open.end()) {
      out.push_back({it->second, ev.at + settle});
      open.erase(it);
    }
  }
  for (const auto& [key, began] : open) {
    (void)key;
    out.push_back({began, horizon});
  }
  std::sort(out.begin(), out.end(),
            [](const util::TimeInterval& x, const util::TimeInterval& y) {
              return x.begin < y.begin;
            });
  return out;
}

}  // namespace fatih::sim
