// Packet model.
//
// An IPv4-like header plus an opaque payload identity. We do not carry
// payload bytes: a 64-bit `payload_tag` stands in for the packet contents,
// which is sufficient for fingerprint-based traffic validation — a
// modification attack changes the tag, exactly as altering bytes would
// change a content hash. Control traffic of the detection protocols rides
// in `control`, and does consume simulated bandwidth via `size_bytes`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::sim {

/// Transport protocol discriminator.
enum class Protocol : std::uint8_t {
  kUdp,      ///< datagram data traffic
  kTcp,      ///< simplified TCP Reno data traffic
  kControl,  ///< detection/routing protocol messages
};

/// TCP-style flag bits (used when proto == kTcp).
enum TcpFlags : std::uint8_t {
  kFlagSyn = 1U << 0,
  kFlagAck = 1U << 1,
  kFlagFin = 1U << 2,
};

/// Fields that identify and route a packet. Everything except `ttl` is
/// invariant along the path; fingerprints cover only invariant fields
/// (dissertation §7.4.2 discusses why TTL must be excluded).
struct PacketHeader {
  util::NodeId src = util::kInvalidNode;  ///< originating end node
  util::NodeId dst = util::kInvalidNode;  ///< final destination node
  std::uint32_t flow_id = 0;              ///< flow demultiplexer
  std::uint32_t seq = 0;                  ///< per-flow sequence / TCP seq
  std::uint32_t ack = 0;                  ///< TCP cumulative ack
  Protocol proto = Protocol::kUdp;
  std::uint8_t flags = 0;  ///< TcpFlags when proto == kTcp
  std::uint8_t ttl = 64;   ///< mutable hop limit
};

/// Base class for typed control-plane payloads (routing LSAs, traffic
/// summaries, detection announcements). Immutable once sent: a router that
/// wants to tamper must replace the pointer, and signatures are checked by
/// receivers.
struct ControlPayload {
  virtual ~ControlPayload() = default;
  /// Dispatch tag; each subsystem defines its own kinds (see kind ranges
  /// in routing/link_state.hpp and detection/messages.hpp).
  [[nodiscard]] virtual std::uint16_t kind() const = 0;
};

/// A packet in flight. Copyable value; the control payload is shared
/// immutable state.
struct Packet {
  PacketHeader hdr;
  std::uint32_t size_bytes = 0;  ///< total wire size, header included
  /// Optional source route (dissertation §2.1.6: PERLMAN, HSER and
  /// SecTrace are source-routed). When set, routers forward along this
  /// node sequence instead of consulting their tables; `route_hop` is the
  /// packet's current position in it.
  std::shared_ptr<const std::vector<util::NodeId>> source_route;
  std::uint8_t route_hop = 0;
  /// Identity of the payload contents; two packets with equal invariant
  /// headers and equal payload_tag are "the same bytes".
  std::uint64_t payload_tag = 0;
  /// Globally unique id assigned at creation; never visible to protocols
  /// (it exists for ground-truth bookkeeping in tests and benches).
  std::uint64_t uid = 0;
  util::SimTime created;
  std::shared_ptr<const ControlPayload> control;

  [[nodiscard]] bool is_control() const { return hdr.proto == Protocol::kControl; }
};

/// Renders "flow/seq src->dst" for logs.
[[nodiscard]] std::string describe(const Packet& p);

/// Minimum on-the-wire size accounting for the header.
inline constexpr std::uint32_t kHeaderBytes = 40;

}  // namespace fatih::sim
