#include "sim/simulator.hpp"

#include <cassert>

namespace fatih::sim {

EventId Simulator::schedule_at(util::SimTime t, std::function<void()> fn) {
  // Requests for the past run "now": simulated time never moves backward.
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(util::Duration d, std::function<void()> fn) {
  return schedule_at(now_ + d, std::move(fn));
}

void Simulator::cancel(EventId id) { callbacks_.erase(id); }

void Simulator::run_until(util::SimTime limit) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.at > limit) break;
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.at;
    ++dispatched_;
    fn();
  }
  if (limit != util::SimTime::infinity() && now_ < limit) now_ = limit;
}

void Simulator::run() { run_until(util::SimTime::infinity()); }

}  // namespace fatih::sim
