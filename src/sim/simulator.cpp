#include "sim/simulator.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace fatih::sim {

Simulator::~Simulator() {
  // Destroy callbacks of events still pending at teardown (experiments
  // routinely stop mid-schedule via run_until).
  for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
    EventRecord& rec = record(slot);
    if (rec.armed) destroy_callback(rec);
  }
}

void Simulator::grow_slab() {
  // Grow the slab by one chunk; records never move afterwards. Slots are
  // linked lowest-index-first so allocation order stays tidy.
  // fatih-lint: allow(hot-path-allocation) amortized slab growth: one chunk per kChunkSlots events, never re-entered once the run is warmed up
  auto chunk = std::make_unique<EventRecord[]>(kChunkSlots);
  const std::uint32_t base = slot_count_;
  for (std::size_t i = kChunkSlots; i-- > 0;) {
    chunk[i].next_free = free_head_;
    free_head_ = base + static_cast<std::uint32_t>(i);
  }
  chunks_.push_back(std::move(chunk));
  slot_count_ += kChunkSlots;
  assert(slot_count_ <= kSlotMask + 1);  // slots must fit the packed heap key
}

void Simulator::destroy_callback(EventRecord& rec) {
  if (rec.heap != nullptr) {
    rec.vt->destroy(rec.heap);
  } else {
    rec.vt->destroy(rec.inline_buf);
  }
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slot_count_) return;  // never-issued or foreign id
  EventRecord& rec = record(slot);
  if (!rec.armed || rec.generation != gen) return;  // already fired/cancelled
  destroy_callback(rec);
  release_slot(slot);
  ++stale_;  // the heap entry stays behind; dispatch or the sweep skips it
  maybe_sweep();
}

void Simulator::maybe_sweep() {
  // Compact once stale entries outnumber live ones (with a floor so tiny
  // queues never bother): the pending storage stays within 2x the live
  // event count, which bounds memory under unbounded cancel/reschedule
  // churn. Stale entries may sit in either tier, so both are filtered.
  const std::size_t pending = heap_.size() + (near_.size() - near_head_);
  if (stale_ < 64 || stale_ * 2 <= pending) return;
  const auto is_stale = [this](const HeapEntry& e) {
    const EventRecord& rec = record(static_cast<std::uint32_t>(e.key & kSlotMask));
    return !rec.armed || rec.seq != e.key >> kSlotBits;
  };
  near_.erase(near_.begin(), near_.begin() + static_cast<std::ptrdiff_t>(near_head_));
  near_head_ = 0;
  std::erase_if(near_, is_stale);  // order-preserving: near_ stays sorted
  std::erase_if(heap_, is_stale);
  // Floyd heapify for the 4-ary layout: sift every non-leaf, last first.
  const std::size_t n = heap_.size();
  for (std::size_t i = n >= 2 ? (n - 2) / 4 + 1 : 0; i-- > 0;) {
    heap_sift_down(i, heap_[i]);
  }
  stale_ = 0;
  ++sweeps_;
}

bool Simulator::advance_near() {
  near_.clear();
  near_head_ = 0;
  if (heap_.empty()) return false;
  // Re-anchor the window at the earliest far entry and drain everything
  // inside it. Popping a min-heap yields ascending (at, key) order, so the
  // migrated batch is already sorted — no sort pass. The horizon never
  // moves while near_ has entries, so a far entry can never become due
  // before a staged one.
  near_horizon_ = heap_.front().at + util::Duration::nanos(near_window_ns_);
  while (!heap_.empty() && heap_.front().at < near_horizon_) {
    near_.push_back(heap_.front());
    heap_pop();
  }
  // Steer the window toward small migration batches: halve when a refill
  // drags in a crowd, widen when it comes up nearly empty. Deterministic —
  // driven only by queue contents, never by wall clock.
  if (near_.size() > 64 && near_window_ns_ > 16 * 1000) {
    near_window_ns_ >>= 1;
  } else if (near_.size() < 8 && near_window_ns_ < 1024 * 1024) {
    near_window_ns_ <<= 1;
  }
  return true;
}

void Simulator::run_until(util::SimTime limit) {
  for (;;) {
    if (near_head_ >= near_.size() && !advance_near()) break;
    const HeapEntry top = near_[near_head_];
    // A live entry's time always equals its record's time, so the limit
    // check needs no record load. A stale entry past the limit parks
    // harmlessly until a later run or sweep collects it.
    if (top.at > limit) break;
    ++near_head_;
    const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
    EventRecord& rec = record(slot);
    if (!rec.armed || rec.seq != top.key >> kSlotBits) {  // cancelled tombstone
      if (stale_ > 0) --stale_;
      continue;
    }
    // Pull the next event's record toward the cache while this callback
    // runs; the slab is large enough that the line is usually cold.
    if (near_head_ < near_.size()) {
      __builtin_prefetch(&record(static_cast<std::uint32_t>(near_[near_head_].key & kSlotMask)));
    }
    now_ = top.at;
    ++dispatched_;
    // The typed fire invokes the callable in place; the slot is dead to
    // cancels from the first instruction and rejoins the free list only
    // after the invocation returns (see fire_inline/fire_heap).
    void* p = rec.heap != nullptr ? rec.heap : static_cast<void*>(rec.inline_buf);
    const std::uint32_t prev_firing = firing_slot_;  // reentrant run_until
    firing_slot_ = slot;
    rec.vt->fire(*this, slot, p);
    firing_slot_ = prev_firing;
  }
  if (limit != util::SimTime::infinity() && now_ < limit) now_ = limit;
}

void Simulator::run() { run_until(util::SimTime::infinity()); }

std::uint64_t Simulator::pending_fingerprint() const {
  std::vector<HeapEntry> live;
  live.reserve(in_use_);
  const auto collect = [&](const HeapEntry& e) {
    const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    const EventRecord& rec = record(slot);
    if (rec.armed && rec.seq == e.key >> kSlotBits) live.push_back(e);
  };
  for (std::size_t i = near_head_; i < near_.size(); ++i) collect(near_[i]);
  for (const HeapEntry& e : heap_) collect(e);
  std::sort(live.begin(), live.end(), before);
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const HeapEntry& e : live) {
    h = util::fnv1a64_word(h, static_cast<std::uint64_t>(e.at.nanos()));
    h = util::fnv1a64_word(h, e.key);
  }
  return h;
}

}  // namespace fatih::sim
