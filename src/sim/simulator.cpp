#include "sim/simulator.hpp"

#include <algorithm>

namespace fatih::sim {

Simulator::~Simulator() {
  // Destroy callbacks of events still pending at teardown (experiments
  // routinely stop mid-schedule via run_until).
  for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
    EventRecord& rec = record(slot);
    if (rec.armed) destroy_callback(rec);
  }
}

void Simulator::grow_slab() {
  // Grow the slab by one chunk; records never move afterwards. Slots are
  // linked lowest-index-first so allocation order stays tidy.
  auto chunk = std::make_unique<EventRecord[]>(kChunkSlots);
  const std::uint32_t base = slot_count_;
  for (std::size_t i = kChunkSlots; i-- > 0;) {
    chunk[i].next_free = free_head_;
    free_head_ = base + static_cast<std::uint32_t>(i);
  }
  chunks_.push_back(std::move(chunk));
  slot_count_ += kChunkSlots;
}

void Simulator::destroy_callback(EventRecord& rec) {
  if (rec.heap != nullptr) {
    rec.vt->destroy(rec.heap);
  } else {
    rec.vt->destroy(rec.inline_buf);
  }
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slot_count_) return;  // never-issued or foreign id
  EventRecord& rec = record(slot);
  if (!rec.armed || rec.generation != gen) return;  // already fired/cancelled
  destroy_callback(rec);
  release_slot(slot);
  ++stale_;  // the heap entry stays behind; dispatch or the sweep skips it
  maybe_sweep();
}

void Simulator::maybe_sweep() {
  // Compact once stale entries outnumber live ones (with a floor so tiny
  // heaps never bother): the heap stays within 2x the live event count,
  // which bounds memory under unbounded cancel/reschedule churn.
  if (stale_ < 64 || stale_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const HeapEntry& e) {
    const EventRecord& rec = record(e.slot);
    return !rec.armed || rec.seq != e.seq;
  });
  // Floyd heapify for the 4-ary layout: sift every non-leaf, last first.
  const std::size_t n = heap_.size();
  for (std::size_t i = n >= 2 ? (n - 2) / 4 + 1 : 0; i-- > 0;) {
    heap_sift_down(i, heap_[i]);
  }
  stale_ = 0;
  ++sweeps_;
}

void Simulator::run_until(util::SimTime limit) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    // A live entry's time always equals its record's time, so the limit
    // check needs no record load. A stale entry past the limit parks
    // harmlessly until a later run or sweep collects it.
    if (top.at > limit) break;
    EventRecord& rec = record(top.slot);
    if (!rec.armed || rec.seq != top.seq) {  // cancelled: drop the tombstone
      heap_pop();
      if (stale_ > 0) --stale_;
      continue;
    }
    heap_pop();
    now_ = top.at;
    ++dispatched_;
    // The typed fire relocates the callable out of the record and frees
    // the slot before invoking, so a callback that schedules (and thereby
    // reuses the slot) cannot clobber its own captures mid-flight.
    void* p = rec.heap != nullptr ? rec.heap : static_cast<void*>(rec.inline_buf);
    rec.vt->fire(*this, top.slot, p);
  }
  if (limit != util::SimTime::infinity() && now_ < limit) now_ = limit;
}

void Simulator::run() { run_until(util::SimTime::infinity()); }

}  // namespace fatih::sim
