// Random Early Detection queue (Floyd & Jacobson 1993), plus the reusable
// EWMA state machine that Protocol chi's RED traffic validator replays
// (dissertation §6.5).
//
// The EWMA / drop-probability computation is factored into RedState so the
// exact same arithmetic runs in two places: inside the simulated router's
// queue, and inside the remote validator that replays the reported arrival
// stream to recover each packet's drop probability (§6.5.2, Fig. 6.10).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "sim/queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fatih::sim {

/// RED configuration. Thresholds are in bytes (we operate the queue in
/// byte mode, matching the dissertation's "average queue size above 45,000
/// bytes" attack descriptions).
struct RedParams {
  double weight = 0.002;          ///< EWMA weight w_q
  double min_threshold = 15000;   ///< min_th in bytes
  double max_threshold = 45000;   ///< max_th in bytes
  double max_probability = 0.1;   ///< max_p at max_th
  bool gentle = true;             ///< ramp max_p..1 over (max_th, 2*max_th]
  std::size_t byte_limit = 60000; ///< hard queue limit
  double mean_packet_size = 1000; ///< for idle-time averaging, bytes
  double drain_rate = 1.25e7;     ///< output link rate, bytes/sec (idle decay)
};

/// The deterministic part of RED: EWMA average and per-arrival drop
/// probability. Contains no randomness — the caller supplies the coin.
class RedState {
 public:
  /// Updates the average for a packet arriving at `now` when the
  /// instantaneous queue holds `queue_bytes`, and returns the early-drop
  /// probability p_a in [0, 1] for this packet.
  double on_arrival(const RedParams& params, std::size_t queue_bytes, util::SimTime now);

  /// Records the outcome so the count-since-last-drop term evolves the way
  /// Floyd-Jacobson RED specifies.
  void on_outcome(bool dropped);

  /// Marks the instant the queue went empty (starts the idle period).
  void on_queue_empty(util::SimTime now);

  [[nodiscard]] double average() const { return avg_; }

 private:
  double avg_ = 0.0;
  std::int64_t count_ = -1;  // packets since last early drop
  bool idle_ = true;
  util::SimTime idle_since_;
};

/// RED output queue: RedState + a seeded coin + a FIFO.
class RedQueue final : public OutputQueue {
 public:
  RedQueue(RedParams params, std::uint64_t seed) : params_(params), rng_(seed) {}

  EnqueueResult enqueue(const Packet& p, util::SimTime now) override;
  std::optional<Packet> dequeue(util::SimTime now) override;
  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return q_.size(); }
  [[nodiscard]] std::size_t byte_limit() const override { return params_.byte_limit; }

  [[nodiscard]] const RedParams& params() const { return params_; }
  /// Current EWMA average queue size in bytes (the value attacks key on).
  [[nodiscard]] double average_queue() const { return state_.average(); }

 private:
  RedParams params_;
  RedState state_;
  util::Rng rng_;
  std::size_t bytes_ = 0;
  std::deque<Packet> q_;
};

}  // namespace fatih::sim
