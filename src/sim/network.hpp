// Network: owns the simulator, the nodes, and the wiring between them.
//
// Experiments build a Network, connect routers/hosts with duplex links
// (two simplex interfaces), attach traffic agents and detection engines,
// then run the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/node.hpp"
#include "sim/red.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace fatih::sim {

/// Which queue discipline a link's output interfaces use.
enum class QueueKind { kDropTail, kRed };

/// Duplex link configuration. Applied symmetrically to both directions.
struct LinkConfig {
  double bandwidth_bps = 1e8;
  util::Duration delay = util::Duration::millis(1);
  std::size_t queue_limit_bytes = 64000;
  QueueKind queue = QueueKind::kDropTail;
  RedParams red;       ///< used when queue == kRed (byte_limit overrides queue_limit_bytes)
  std::uint32_t metric = 1;  ///< routing cost, symmetric
};

/// A record of one simplex adjacency, for topology export to the routing
/// library.
struct Adjacency {
  util::NodeId from;
  util::NodeId to;
  std::uint32_t metric;
  LinkParams link;
};

/// Container and factory for a simulated network.
class Network {
 public:
  explicit Network(std::uint64_t seed);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  Router& add_router(std::string name);
  Host& add_host(std::string name);

  /// Connects a and b with a duplex link (two interfaces, two simplex links).
  void connect(util::NodeId a, util::NodeId b, const LinkConfig& cfg);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(util::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(util::NodeId id) const { return *nodes_.at(id); }
  /// Requires the node to be a Router.
  [[nodiscard]] Router& router(util::NodeId id);
  /// Requires the node to be a Host.
  [[nodiscard]] Host& host(util::NodeId id);
  [[nodiscard]] bool is_router(util::NodeId id) const;

  /// All simplex adjacencies, for routing computations.
  [[nodiscard]] const std::vector<Adjacency>& adjacencies() const { return adjacencies_; }

  /// Creates a packet with a fresh uid and creation timestamp.
  [[nodiscard]] Packet make_packet(PacketHeader hdr, std::uint32_t payload_bytes);

  /// Fresh pseudo-random payload identity (models distinct packet bytes).
  [[nodiscard]] std::uint64_t fresh_payload_tag() { return rng_.next_u64(); }

 private:
  std::unique_ptr<OutputQueue> make_queue(const LinkConfig& cfg);

  std::uint64_t seed_;
  Simulator sim_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> node_is_router_;
  std::vector<Adjacency> adjacencies_;
  std::uint64_t next_uid_ = 1;
};

}  // namespace fatih::sim
