// Network: owns the simulator, the nodes, and the wiring between them.
//
// Experiments build a Network, connect routers/hosts with duplex links
// (two simplex interfaces), attach traffic agents and detection engines,
// then run the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/node.hpp"
#include "sim/red.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace fatih::sim {

/// Which queue discipline a link's output interfaces use.
enum class QueueKind { kDropTail, kRed };

/// Duplex link configuration. Applied symmetrically to both directions.
struct LinkConfig {
  double bandwidth_bps = 1e8;
  util::Duration delay = util::Duration::millis(1);
  std::size_t queue_limit_bytes = 64000;
  QueueKind queue = QueueKind::kDropTail;
  RedParams red;       ///< used when queue == kRed (byte_limit overrides queue_limit_bytes)
  std::uint32_t metric = 1;  ///< routing cost, symmetric
};

/// A record of one simplex adjacency, for topology export to the routing
/// library.
struct Adjacency {
  util::NodeId from;
  util::NodeId to;
  std::uint32_t metric;
  LinkParams link;
};

/// Container and factory for a simulated network.
class Network {
 public:
  /// Observer of duplex-link administrative state changes (both simplex
  /// directions change together).
  using LinkStatusHook =
      std::function<void(util::NodeId a, util::NodeId b, bool up, util::SimTime)>;
  /// Observer of router crash/restart.
  using NodeStatusHook = std::function<void(util::NodeId node, bool up, util::SimTime)>;

  explicit Network(std::uint64_t seed);
  /// Sharded mode: one Simulator per PoP plus the control simulator that
  /// sim() returns (round timers land there). Nodes must subsequently be
  /// added in id order so `plan.pop_of` lines up. Packet identity (uid /
  /// payload tag) switches to per-node streams so no global rng is touched
  /// from the parallel pass.
  Network(std::uint64_t seed, ShardPlan plan);

  /// The control simulator in sharded mode; the only simulator otherwise.
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // ------------------------------------------------------------- sharding
  [[nodiscard]] bool sharded() const { return !pop_sims_.empty(); }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  /// The simulator a node's events run on: its PoP's simulator when
  /// sharded, sim() otherwise. Traffic agents pinned to a node must
  /// schedule here, never on sim().
  [[nodiscard]] Simulator& node_sim(util::NodeId id) {
    return pop_sims_.empty() ? sim_ : *pop_sims_[plan_.pop_of[id]];
  }
  [[nodiscard]] std::uint32_t pop_count() const {
    return static_cast<std::uint32_t>(pop_sims_.size());
  }
  [[nodiscard]] Simulator& pop_sim(std::uint32_t pop) { return *pop_sims_.at(pop); }
  /// RNG digest for state fingerprints: the global stream, plus — sharded
  /// only — every per-node identity stream in node order.
  [[nodiscard]] std::uint64_t rng_fingerprint() const;

  Router& add_router(std::string name);
  Host& add_host(std::string name);

  /// Connects a and b with a duplex link (two interfaces, two simplex links).
  void connect(util::NodeId a, util::NodeId b, const LinkConfig& cfg);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(util::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(util::NodeId id) const { return *nodes_.at(id); }
  /// Requires the node to be a Router.
  [[nodiscard]] Router& router(util::NodeId id);
  /// Requires the node to be a Host.
  [[nodiscard]] Host& host(util::NodeId id);
  [[nodiscard]] bool is_router(util::NodeId id) const;

  /// All simplex adjacencies, for routing computations. Includes down
  /// links; filter with link_usable() for a live view.
  [[nodiscard]] const std::vector<Adjacency>& adjacencies() const { return adjacencies_; }

  // ----------------------------------------------------------- topology churn
  //
  // Links have an administrative state (set_link_up) and nodes a crash
  // state; the effective state of a simplex interface a→b is
  // admin(a,b) && up(a). Packets reaching a crashed node die there.

  /// Takes the duplex link a—b down or up. Down flushes both queues and
  /// loses in-flight packets. No-op if already in the requested state.
  void set_link_up(util::NodeId a, util::NodeId b, bool up);
  /// Administrative state of the duplex link a—b (true if never touched).
  [[nodiscard]] bool link_admin_up(util::NodeId a, util::NodeId b) const;
  /// True iff the link is admin-up AND both endpoints are alive — the
  /// condition under which a→b traffic can actually get through.
  [[nodiscard]] bool link_usable(util::NodeId a, util::NodeId b) const;

  /// Crashes a router: it black-holes everything, its interfaces drop
  /// their queues, and its forwarding table (soft state) is erased.
  void crash_router(util::NodeId id);
  /// Restarts a crashed router with empty soft state; links that were
  /// admin-down stay down.
  void restart_router(util::NodeId id);
  [[nodiscard]] bool node_up(util::NodeId id) const { return nodes_.at(id)->up(); }

  /// Status observers (fire synchronously from the mutators above).
  void add_link_status_hook(LinkStatusHook h) { link_hooks_.push_back(std::move(h)); }
  void add_node_status_hook(NodeStatusHook h) { node_hooks_.push_back(std::move(h)); }

  // ---------------------------------------------------------- observability

  /// Attaches (or detaches, with nulls) the trace sink and metrics
  /// registry: wires both onto the simulator and pre-resolves the sim
  /// layer's per-packet counter handles ("sim.drop.*", "sim.enqueued",
  /// ...). Attach before constructing detection engines so their handles
  /// resolve too; both objects must outlive the run.
  void attach_observability(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Creates a packet with a fresh uid and creation timestamp.
  [[nodiscard]] Packet make_packet(PacketHeader hdr, std::uint32_t payload_bytes);

  /// Fresh pseudo-random payload identity (models distinct packet bytes).
  [[nodiscard]] std::uint64_t fresh_payload_tag() { return rng_.next_u64(); }

 private:
  std::unique_ptr<OutputQueue> make_queue(const LinkConfig& cfg);
  static std::uint64_t link_key(util::NodeId a, util::NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  /// Re-derives the effective up state of every interface on `id` after a
  /// node or link state change.
  void apply_interface_states(util::NodeId id);

  std::uint64_t seed_;
  Simulator sim_;
  util::Rng rng_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<Simulator>> pop_sims_;
  /// Per-node packet identity streams (sharded mode only): uid counter and
  /// payload-tag rng, consumed exclusively by the owning PoP's worker.
  struct NodeIdentity {
    util::Rng rng;
    std::uint64_t next_uid;
  };
  std::vector<NodeIdentity> identities_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> node_is_router_;
  std::vector<Adjacency> adjacencies_;
  /// Duplex links that are administratively down (absent == up).
  std::map<std::uint64_t, bool> link_admin_down_;
  std::vector<LinkStatusHook> link_hooks_;
  std::vector<NodeStatusHook> node_hooks_;
  std::uint64_t next_uid_ = 1;
};

}  // namespace fatih::sim
