// Nodes (routers and hosts), interfaces, links and packet taps.
//
// A Node owns output Interfaces; each interface bundles an output queue
// with a simplex link (bandwidth, propagation delay) to a peer node.
// Routers forward hop-by-hop from a forwarding table; a ForwardFilter hook
// lets the attack library make a compromised router drop / modify /
// misroute / delay traffic (dissertation §2.2.1 threat model). Packet taps
// are the "Traffic Summary Generator" attachment points (Fig. 5.5): the
// validation and detection layers observe traffic exclusively through
// them, exactly as a monitoring module sitting on the forwarding path
// would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::sim {

class Node;
class Router;
class Network;

/// Ground-truth classification of a packet drop. Detection protocols never
/// see this; it exists so tests and benches can score detectors.
enum class DropReason {
  kCongestion,  ///< queue overflow (drop-tail full)
  kRedEarly,    ///< RED probabilistic early drop
  kMalicious,   ///< dropped by an adversary filter
  kTtlExpired,
  kNoRoute,
  kLinkFault,   ///< lost on the wire by an injected link fault
  kLinkDown,    ///< link administratively / physically down (churn)
  kNodeDown,    ///< delivered to or forwarded by a crashed node
};

/// Simplex link properties.
struct LinkParams {
  double bandwidth_bps = 1e8;                        ///< bits per second
  util::Duration delay = util::Duration::millis(1);  ///< propagation delay

  /// Serialization time of `bytes` on this link.
  [[nodiscard]] util::Duration tx_time(std::uint32_t bytes) const {
    return util::Duration::from_seconds(static_cast<double>(bytes) * 8.0 / bandwidth_bps);
  }
};

/// An output interface: queue + transmitter + simplex link to `peer`.
/// What a link fault injector does to a packet that finished serializing:
/// lose it on the wire, or deliver it `extra_delay` late.
struct LinkFault {
  bool drop = false;
  util::Duration extra_delay{};
};

class Interface {
 public:
  using EnqueueTap = std::function<void(const Packet&, util::SimTime)>;
  using DropTap = std::function<void(const Packet&, util::SimTime, DropReason)>;
  using TransmitTap = std::function<void(const Packet&, util::SimTime)>;
  /// Consulted once per transmitted packet; models a faulty/lossy link
  /// (the control-plane fault injection the reliable transport is built
  /// to survive). Null = perfect link.
  using FaultInjector = std::function<LinkFault(const Packet&, util::SimTime)>;

  Interface(Simulator& sim, Node& owner, std::size_t index, util::NodeId peer, LinkParams link,
            std::unique_ptr<OutputQueue> queue);

  Interface(const Interface&) = delete;
  Interface& operator=(const Interface&) = delete;

  /// Offers a packet to the queue; starts the transmitter if idle.
  /// Returns the queue's verdict; drops fire the drop taps. When the
  /// transmitter is idle and the queue reports pass_through(), the packet
  /// skips the queue entirely (same verdict, same observable effects).
  EnqueueResult send(const Packet& p);
  /// Move-through overload: on the pass-through fast path the packet goes
  /// straight into the serialization event without a copy.
  EnqueueResult send(Packet&& p);
  /// Batched admission for packets arriving within one link tick: one
  /// queue-admission walk (OutputQueue::enqueue_batch), per-packet taps and
  /// verdicts in order, one queue-depth sample after the batch (the
  /// intermediate depths never existed at distinct times), one transmitter
  /// kick. `results` must have batch.size() slots.
  void send_batch(std::span<const Packet> batch, EnqueueResult* results);

  [[nodiscard]] util::NodeId peer() const { return peer_; }
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const LinkParams& link() const { return link_; }
  [[nodiscard]] const OutputQueue& queue() const { return *queue_; }
  [[nodiscard]] Node& owner() { return owner_; }

  /// Fraction of the byte limit currently occupied, in [0, 1].
  [[nodiscard]] double fill_fraction() const;

  /// Post-admission queue depth in bytes (including the packet itself)
  /// seen by the most recently accepted packet. Enqueue taps must read
  /// this instead of queue().byte_length(): the pass-through fast path
  /// hands an accepted packet straight to the transmitter, so the queue
  /// itself never holds it.
  [[nodiscard]] std::size_t last_admit_depth_bytes() const { return last_admit_depth_bytes_; }

  /// Observers. Enqueue fires after a packet is accepted into the queue;
  /// transmit fires when serialization onto the wire begins.
  void add_enqueue_tap(EnqueueTap tap) { enqueue_taps_.push_back(std::move(tap)); }
  void add_drop_tap(DropTap tap) { drop_taps_.push_back(std::move(tap)); }
  void add_transmit_tap(TransmitTap tap) { transmit_taps_.push_back(std::move(tap)); }

  /// Installs (or replaces) the link fault injector for this simplex
  /// direction. Dropped packets fire the drop taps with kLinkFault.
  void set_fault_injector(FaultInjector f) { fault_injector_ = std::move(f); }

  /// Used by Node::deliver_to_peer; set once during Network wiring.
  void set_peer_node(Node* peer_node) { peer_node_ = peer_node; }

  /// Marks this interface as PoP-crossing (sharded engine): packets that
  /// finish serializing are parked in the owner simulator's ShardLane
  /// instead of rearming a propagation event, and arrive on the peer's
  /// simulator via complete_propagation at the window barrier.
  void set_remote(bool remote) { remote_ = remote; }
  [[nodiscard]] bool remote() const { return remote_; }

  /// Second transmit stage for lane-delivered packets: runs on the *peer*
  /// PoP's simulator, checks the captured down-epoch, and hands the packet
  /// to the peer node. Mirrors TransmitEvent's arrival stage exactly.
  void complete_propagation(Packet&& p, std::uint64_t epoch);

  /// Ground-truth drop notification used by Router for non-queue drops.
  void notify_drop(const Packet& p, DropReason reason);

  /// Brings the simplex link up or down. Taking it down flushes the queue
  /// (drops fire the taps with kLinkDown) and loses any packet currently
  /// serializing or propagating; bringing it back up restarts the
  /// transmitter. Driven by Network::set_link_up / crash_router.
  void set_up(bool up);
  [[nodiscard]] bool up() const { return up_; }

 private:
  /// The two-stage serialization/propagation event (defined in node.cpp).
  /// A named functor so start_transmit can construct it in place inside
  /// the event record via schedule_emplace_in — a lambda would be built on
  /// the stack and moved in, a Packet-sized memcpy per transmission.
  struct TransmitEvent;

  EnqueueResult send_slow(const Packet& p);
  void note_pass_through(const Packet& p);
  void try_transmit();
  void start_transmit(Packet p);

  Simulator& sim_;
  Node& owner_;
  std::size_t index_;
  util::NodeId peer_;
  LinkParams link_;
  std::unique_ptr<OutputQueue> queue_;
  Node* peer_node_ = nullptr;
  /// Mirror of queue_->packet_count(), maintained across enqueue/dequeue
  /// verdicts so the (dominant) empty-queue case in try_transmit skips the
  /// virtual dequeue entirely. Safe because an empty-queue dequeue is a
  /// stateless no-op for every queue type (RED marks idle only on the
  /// dequeue that empties the queue).
  std::size_t queued_packets_ = 0;
  std::size_t last_admit_depth_bytes_ = 0;
  /// One-entry tx_time memo (pure function of size for a fixed link).
  std::uint32_t tx_memo_bytes_ = 0xFFFFFFFFu;
  util::Duration tx_memo_{};
  bool busy_ = false;
  bool up_ = true;
  bool remote_ = false;  ///< PoP-crossing (sharded engine lane handoff)
  /// Incremented every time the link goes down; serialization/propagation
  /// events capture the epoch at schedule time and discard themselves if
  /// the link failed underneath them.
  std::uint64_t down_epoch_ = 0;

  std::vector<EnqueueTap> enqueue_taps_;
  std::vector<DropTap> drop_taps_;
  std::vector<TransmitTap> transmit_taps_;
  FaultInjector fault_injector_;
};

/// What a forward filter (attack hook) tells the router to do with a
/// packet it is about to forward.
struct ForwardDecision {
  enum class Action { kForward, kDrop };
  Action action = Action::kForward;
  /// Replacement packet when modifying (payload_tag / header tampering).
  std::optional<Packet> replacement;
  /// Output interface override for misrouting.
  std::optional<std::size_t> iface_override;
  /// Extra queueing delay the adversary inserts before enqueue.
  util::Duration extra_delay{};

  static ForwardDecision forward() { return {}; }
  static ForwardDecision drop() {
    ForwardDecision d;
    d.action = Action::kDrop;
    return d;
  }
};

/// Attack hook installed on a compromised router. `prev` is the neighbor
/// the packet arrived from (== the router itself for locally originated
/// packets); `out` is the interface the forwarding table chose.
class ForwardFilter {
 public:
  virtual ~ForwardFilter() = default;
  virtual ForwardDecision on_forward(const Packet& p, util::NodeId prev, const Interface& out,
                                     Router& router) = 0;
};

/// Base class for routers and hosts.
class Node {
 public:
  /// Handler for packets addressed to this node (data plane).
  using LocalHandler = std::function<void(const Packet&, util::NodeId prev, util::SimTime)>;
  /// Handler for control-plane payloads addressed to this node; each
  /// subsystem filters on ControlPayload::kind().
  using ControlSink = std::function<void(const Packet&, util::NodeId prev, util::SimTime)>;
  /// Observer of every packet arriving at this node (before forwarding).
  using ReceiveTap = std::function<void(const Packet&, util::NodeId prev, util::SimTime)>;

  Node(Simulator& sim, util::NodeId id, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] util::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() { return sim_; }

  Interface& add_interface(util::NodeId peer, LinkParams link, std::unique_ptr<OutputQueue> q);
  [[nodiscard]] std::size_t interface_count() const { return interfaces_.size(); }
  [[nodiscard]] Interface& interface(std::size_t i) { return *interfaces_.at(i); }
  [[nodiscard]] const Interface& interface(std::size_t i) const { return *interfaces_.at(i); }
  /// Interface whose link points at `peer`, or nullptr.
  [[nodiscard]] Interface* interface_to(util::NodeId peer);

  void add_local_handler(LocalHandler h) { local_handlers_.push_back(std::move(h)); }
  void add_control_sink(ControlSink s) { control_sinks_.push_back(std::move(s)); }
  void add_receive_tap(ReceiveTap t) { receive_taps_.push_back(std::move(t)); }

  /// Called by the far interface when a packet finishes propagating.
  /// By value so the packet can be moved hop-to-hop: the forwarding chain
  /// (propagation → receive → processing-delay event → do_forward) hands
  /// one Packet along instead of copying at each stage (each copy bumps
  /// two shared_ptr refcounts).
  virtual void receive(Packet p, util::NodeId prev) = 0;

  /// Crash / restart state. A down node drops everything it receives and
  /// originates nothing. Driven by Network::crash_router / restart_router.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }

  /// Barrier replay of a control delivery the sharded engine deferred:
  /// fires the control sinks with the recorded delivery time. Only the
  /// ShardEngine calls this, in canonical (time, PoP, emission) order.
  void deliver_control_direct(const Packet& p, util::NodeId prev, util::SimTime at) {
    for (const auto& sink : control_sinks_) sink(p, prev, at);
  }

 protected:
  void fire_receive_taps(const Packet& p, util::NodeId prev);
  void deliver_locally(const Packet& p, util::NodeId prev);

  Simulator& sim_;
  util::NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Interface>> interfaces_;
  std::vector<LocalHandler> local_handlers_;
  std::vector<ControlSink> control_sinks_;
  std::vector<ReceiveTap> receive_taps_;
  bool up_ = true;
};

/// A router: hop-by-hop forwarder with (prev, dst)-keyed policy routes,
/// processing delay with bounded jitter, and an optional adversary filter.
class Router final : public Node {
 public:
  using ForwardTap =
      std::function<void(const Packet&, util::NodeId prev, std::size_t out_iface, util::SimTime)>;
  using DropTap = std::function<void(const Packet&, util::SimTime, DropReason)>;

  Router(Simulator& sim, util::NodeId id, std::string name, std::uint64_t jitter_seed);

  /// Installs the default route for `dst` (any previous hop).
  void set_route(util::NodeId dst, std::size_t out_iface);
  /// Installs a policy route used only for packets arriving from `prev`
  /// (the Fatih response mechanism, dissertation §5.3.1 "policy based
  /// routing ... combination of the source and destination addresses").
  void set_policy_route(util::NodeId prev, util::NodeId dst, std::size_t out_iface);
  /// Installs an explicit drop for (prev, dst): no compliant route exists,
  /// and falling back to the default route is not allowed.
  void set_policy_drop(util::NodeId prev, util::NodeId dst);
  void clear_routes();

  /// Looks up the output interface for (prev, dst); policy routes win.
  [[nodiscard]] std::optional<std::size_t> lookup(util::NodeId prev, util::NodeId dst) const;

  /// Fixed part of per-packet forwarding latency.
  void set_processing_delay(util::Duration base, util::Duration max_jitter);
  [[nodiscard]] util::Duration base_processing_delay() const { return proc_base_; }

  /// Installs / removes the adversary hook.
  void set_forward_filter(std::shared_ptr<ForwardFilter> f) { filter_ = std::move(f); }
  [[nodiscard]] const std::shared_ptr<ForwardFilter>& forward_filter() const { return filter_; }
  [[nodiscard]] bool compromised() const { return filter_ != nullptr; }

  /// Sends a packet originating at this node (local agent or control
  /// plane). Skips the processing delay; goes straight to forwarding.
  void originate(const Packet& p);
  /// Move overload: the packet is handed down the forwarding chain
  /// without a copy.
  void originate(Packet&& p);

  /// Forwarding observers (used by summary generators and ground truth).
  void add_forward_tap(ForwardTap t) { forward_taps_.push_back(std::move(t)); }
  void add_drop_tap(DropTap t) { drop_taps_.push_back(std::move(t)); }

  void receive(Packet p, util::NodeId prev) override;

  /// Ground-truth counters (tests/benches only).
  [[nodiscard]] std::uint64_t malicious_drops() const { return malicious_drops_; }

 private:
  friend class Interface;
  /// Processing-delay event; a named functor for the same in-place
  /// construction reason as Interface::TransmitEvent.
  struct ProcessEvent;
  void do_forward(Packet p, util::NodeId prev);
  void notify_router_drop(const Packet& p, DropReason reason);

  static std::uint64_t key(util::NodeId prev, util::NodeId dst) {
    return (static_cast<std::uint64_t>(prev) << 32) | dst;
  }

  static constexpr std::size_t kDropRouteSentinel = static_cast<std::size_t>(-1);

  // Sorted flat maps, not hash maps: route lookups binary-search a
  // cache-dense array, and any future walk over the tables is in key order
  // (fatih-lint: no-unordered-iteration keeps it that way).
  util::FlatMap<util::NodeId, std::size_t> routes_;
  util::FlatMap<std::uint64_t, std::size_t> policy_routes_;
  util::Duration proc_base_ = util::Duration::micros(20);
  util::Duration proc_jitter_{};
  util::Rng rng_;
  std::shared_ptr<ForwardFilter> filter_;
  std::vector<ForwardTap> forward_taps_;
  std::vector<DropTap> drop_taps_;
  std::uint64_t malicious_drops_ = 0;
};

/// An end host: single-homed, never forwards; everything non-local goes to
/// the gateway interface 0.
class Host final : public Node {
 public:
  Host(Simulator& sim, util::NodeId id, std::string name);

  /// Sends a packet from the local stack toward its destination.
  void send(const Packet& p);
  /// Move overload: hands the packet to the gateway without a copy.
  void send(Packet&& p);
  /// Sends a burst of packets leaving the stack in the same instant via
  /// Interface::send_batch (one queue-admission walk). Verdicts are
  /// discarded; queue drops still fire the drop taps.
  void send_batch(std::span<const Packet> batch);

  void receive(Packet p, util::NodeId prev) override;
};

}  // namespace fatih::sim
