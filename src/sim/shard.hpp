// Sharded event engine: PoP-partitioned simulators, conservative windows,
// deterministic cross-PoP merge.
//
// The partition unit is the PoP, not the worker: a sharded Network gives
// every PoP its own Simulator (plus one control simulator for protocol
// round timers), and worker threads merely execute disjoint sets of PoP
// simulators inside each window. Because a PoP's event stream never
// depends on which worker ran it, every count and digest is byte-identical
// at any worker count — the determinism argument reduces to making the
// *inputs* of each PoP simulator worker-count-invariant:
//
//   1. Window grid. Each step runs every PoP simulator through the
//      half-open window [t_min, w_end) where t_min is the global earliest
//      pending-event time and w_end = t_min + L, with L the minimum
//      propagation delay over PoP-crossing links (src/topo guarantees a
//      uniform inter-PoP delay, and only core routers carry such links).
//      t_min uses Simulator::next_event_time(), whose tombstone-inclusive
//      lower bound is itself deterministic, so the grid is a pure function
//      of the (deterministic) event streams.
//
//   2. Cross-PoP sends. A packet finishing serialization on a PoP-crossing
//      interface is not delivered by rearming the transmit event; it is
//      parked in the source PoP's ShardLane with its arrival time
//      t_tx + delay. Since t_tx >= t_min and delay >= L, the arrival is
//      never inside the current window, so installing it at the barrier —
//      walking lanes in ascending source-PoP order, emissions in order —
//      is always a future schedule. The merge tie-break is therefore the
//      fixed (time, source shard, emission seq) order the installs imprint
//      through the destination simulator's FIFO seq.
//
//   3. Control deliveries. Control-plane packets reaching their
//      destination during the parallel pass are deferred to the node's
//      PoP lane instead of firing sinks inline (engine state is shared
//      across PoPs). At the barrier they replay serially in (time, PoP,
//      emission) order, then the control simulator — which owns every
//      protocol round timer — runs through the same window. Deferral is
//      active whenever the network is sharded, including at one worker,
//      so the replay order never depends on the worker count.
//
// Raw threading primitives live in src/sim/shard.cpp only; fatih-lint rule
// R9 (thread-containment) keeps it that way.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::sim {

class Network;

/// Static PoP partition of the node-id space. Built from a generated
/// topology (src/topo) before the Network is constructed; node ids must be
/// added to the Network in id order so `pop_of` lines up.
struct ShardPlan {
  std::vector<std::uint32_t> pop_of;  ///< node id -> PoP index
  std::uint32_t pops = 0;
  /// Conservative lookahead: minimum propagation delay over PoP-crossing
  /// links. Must be positive and no larger than any inter-PoP link delay.
  util::Duration lookahead;

  [[nodiscard]] bool remote(util::NodeId a, util::NodeId b) const {
    return pop_of[a] != pop_of[b];
  }
};

/// Per-PoP handoff buffer, written only by the worker executing that PoP's
/// simulator during the parallel pass and drained only by the barrier on
/// the coordinating thread — single-writer by construction, so the lanes
/// need no synchronization beyond the pass/barrier ordering itself.
class ShardLane {
 public:
  /// A packet that finished serializing on a PoP-crossing interface;
  /// `at` is its (future, >= window end) arrival time at the peer.
  struct DataHandoff {
    util::SimTime at;
    Interface* iface;
    std::uint64_t epoch;  ///< link down-epoch captured at serialization
    Packet p;
  };
  /// A control-plane packet that reached its destination node; sinks fire
  /// at the barrier in canonical order instead of inline.
  struct ControlHandoff {
    util::SimTime at;
    Node* node;
    util::NodeId prev;
    Packet p;
  };

  void defer_data(util::SimTime at, Interface* iface, std::uint64_t epoch, Packet&& p) {
    data_.push_back(DataHandoff{at, iface, epoch, std::move(p)});
  }
  void defer_control(util::SimTime at, Node* node, util::NodeId prev, const Packet& p) {
    control_.push_back(ControlHandoff{at, node, prev, p});
  }

  [[nodiscard]] std::vector<DataHandoff>& data() { return data_; }
  [[nodiscard]] std::vector<ControlHandoff>& control() { return control_; }

 private:
  std::vector<DataHandoff> data_;
  std::vector<ControlHandoff> control_;
};

/// The window scheduler + worker pool. Owns the lanes and a persistent
/// pool of `workers - 1` threads (one worker runs inline on the calling
/// thread; workers == 1 spawns no thread at all). The Network must be
/// built in sharded mode (per-PoP simulators) before constructing this.
class ShardEngine {
 public:
  ShardEngine(Network& net, unsigned workers);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Co-advances every simulator (PoP + control) to `limit` through
  /// conservative windows; on return all simulators sit at now() == limit
  /// with no pending event at or before it.
  void run_until(util::SimTime limit);

  [[nodiscard]] unsigned workers() const { return workers_; }
  /// Sum of events dispatched across the control and PoP simulators.
  [[nodiscard]] std::uint64_t total_dispatched() const;
  /// FNV fold of per-simulator pending fingerprints in fixed (control,
  /// PoP 0..P-1) order; each per-PoP fingerprint is worker-count-invariant,
  /// so the fold is too.
  [[nodiscard]] std::uint64_t pending_fingerprint() const;

 private:
  struct Pool;  // the threading internals live in shard.cpp only

  void parallel_pass(util::SimTime w_last);
  void run_pops_of_worker(unsigned worker, util::SimTime w_last);
  void worker_loop(unsigned worker);
  void drain_lanes();

  Network& net_;
  unsigned workers_;
  std::vector<ShardLane> lanes_;
  std::vector<ShardLane::ControlHandoff> control_scratch_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace fatih::sim
