#include "sim/node.hpp"

#include <cassert>

#include "sim/shard.hpp"
#include "util/log.hpp"

namespace fatih::sim {

namespace {

/// DropReason -> TraceCode, exhaustively (the kDrop block mirrors the enum,
/// but the switch keeps the mapping honest if either side is reordered).
[[maybe_unused]] obs::TraceCode drop_code(DropReason reason) {
  switch (reason) {
    case DropReason::kCongestion: return obs::TraceCode::kDropCongestion;
    case DropReason::kRedEarly: return obs::TraceCode::kDropRedEarly;
    case DropReason::kMalicious: return obs::TraceCode::kDropMalicious;
    case DropReason::kTtlExpired: return obs::TraceCode::kDropTtlExpired;
    case DropReason::kNoRoute: return obs::TraceCode::kDropNoRoute;
    case DropReason::kLinkFault: return obs::TraceCode::kDropLinkFault;
    case DropReason::kLinkDown: return obs::TraceCode::kDropLinkDown;
    case DropReason::kNodeDown: return obs::TraceCode::kDropNodeDown;
  }
  return obs::TraceCode::kNone;
}

}  // namespace

// ---------------------------------------------------------------- Interface

Interface::Interface(Simulator& sim, Node& owner, std::size_t index, util::NodeId peer,
                     LinkParams link, std::unique_ptr<OutputQueue> queue)
    : sim_(sim),
      owner_(owner),
      index_(index),
      peer_(peer),
      link_(link),
      queue_(std::move(queue)) {
  assert(queue_ != nullptr);
}

double Interface::fill_fraction() const {
  const auto limit = queue_->byte_limit();
  if (limit == 0) return 0.0;
  return static_cast<double>(queue_->byte_length()) / static_cast<double>(limit);
}

EnqueueResult Interface::send(const Packet& p) {
  if (!up_) {
    notify_drop(p, DropReason::kLinkDown);
    return EnqueueResult::kDroppedLinkDown;
  }
  if (!busy_ && queue_->pass_through(p, sim_.now())) {
    note_pass_through(p);
    start_transmit(p);
    return EnqueueResult::kAccepted;
  }
  return send_slow(p);
}

EnqueueResult Interface::send(Packet&& p) {
  if (!up_) {
    notify_drop(p, DropReason::kLinkDown);
    return EnqueueResult::kDroppedLinkDown;
  }
  if (!busy_ && queue_->pass_through(p, sim_.now())) {
    note_pass_through(p);
    start_transmit(std::move(p));
    return EnqueueResult::kAccepted;
  }
  return send_slow(p);
}

/// Observable effects of an accepted pass-through, identical to what
/// enqueue-then-dequeue would have produced: pass_through() guarantees the
/// queue is empty, so the post-enqueue depth is exactly p.size_bytes.
void Interface::note_pass_through(const Packet& p) {
  last_admit_depth_bytes_ = p.size_bytes;
  [[maybe_unused]] obs::PacketCounters& pc = sim_.packet_counters();
  [[maybe_unused]] const auto limit = queue_->byte_limit();
  [[maybe_unused]] const double fill =
      limit == 0 ? 0.0 : static_cast<double>(p.size_bytes) / static_cast<double>(limit);
  FATIH_METRIC(pc.enqueued, inc());
  FATIH_METRIC(pc.queue_fill, add(fill));
  FATIH_TRACE_EMIT(sim_.trace(),
                   queue_depth(sim_.now(), owner_.id(), peer_, p.size_bytes, fill));
  for (const auto& tap : enqueue_taps_) tap(p, sim_.now());
}

EnqueueResult Interface::send_slow(const Packet& p) {
  const auto result = queue_->enqueue(p, sim_.now());
  switch (result) {
    case EnqueueResult::kAccepted: {
      ++queued_packets_;
      last_admit_depth_bytes_ = queue_->byte_length();
      [[maybe_unused]] obs::PacketCounters& pc = sim_.packet_counters();
      FATIH_METRIC(pc.enqueued, inc());
      FATIH_METRIC(pc.queue_fill, add(fill_fraction()));
      FATIH_TRACE_EMIT(sim_.trace(), queue_depth(sim_.now(), owner_.id(), peer_,
                                                 queue_->byte_length(), fill_fraction()));
      for (const auto& tap : enqueue_taps_) tap(p, sim_.now());
      try_transmit();
      break;
    }
    case EnqueueResult::kDroppedFull:
      notify_drop(p, DropReason::kCongestion);
      break;
    case EnqueueResult::kDroppedRedEarly:
      notify_drop(p, DropReason::kRedEarly);
      break;
    case EnqueueResult::kDroppedLinkDown:
      notify_drop(p, DropReason::kLinkDown);
      break;
  }
  return result;
}

void Interface::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up_) {
    // Invalidate the in-flight serialization/propagation events and lose
    // everything waiting in the queue: a cut link keeps nothing.
    ++down_epoch_;
    while (auto popped = queue_->dequeue(sim_.now())) {
      notify_drop(*popped, DropReason::kLinkDown);
    }
    queued_packets_ = 0;
  } else if (!busy_) {
    try_transmit();
  }
}

void Interface::notify_drop(const Packet& p, DropReason reason) {
  FATIH_METRIC(sim_.packet_counters().drops[static_cast<std::size_t>(reason)], inc());
  FATIH_TRACE_EMIT(sim_.trace(),
                   drop(sim_.now(), drop_code(reason), owner_.id(), peer_, p.uid));
  for (const auto& tap : drop_taps_) tap(p, sim_.now(), reason);
}

void Interface::send_batch(std::span<const Packet> batch, EnqueueResult* results) {
  if (batch.empty()) return;
  if (!up_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      notify_drop(batch[i], DropReason::kLinkDown);
      results[i] = EnqueueResult::kDroppedLinkDown;
    }
    return;
  }
  std::size_t admit_depth = queue_->byte_length();
  queue_->enqueue_batch(batch, sim_.now(), results);
  bool any_accepted = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Packet& p = batch[i];
    switch (results[i]) {
      case EnqueueResult::kAccepted: {
        any_accepted = true;
        ++queued_packets_;
        admit_depth += p.size_bytes;  // depth this packet saw, admission order
        last_admit_depth_bytes_ = admit_depth;
        [[maybe_unused]] obs::PacketCounters& pc = sim_.packet_counters();
        FATIH_METRIC(pc.enqueued, inc());
        for (const auto& tap : enqueue_taps_) tap(p, sim_.now());
        break;
      }
      case EnqueueResult::kDroppedFull:
        notify_drop(p, DropReason::kCongestion);
        break;
      case EnqueueResult::kDroppedRedEarly:
        notify_drop(p, DropReason::kRedEarly);
        break;
      case EnqueueResult::kDroppedLinkDown:
        notify_drop(p, DropReason::kLinkDown);
        break;
    }
  }
  if (any_accepted) {
    // One depth sample for the whole batch: the packets were admitted at a
    // single instant, so per-packet intermediate depths never existed.
    [[maybe_unused]] obs::PacketCounters& pc = sim_.packet_counters();
    FATIH_METRIC(pc.queue_fill, add(fill_fraction()));
    FATIH_TRACE_EMIT(sim_.trace(), queue_depth(sim_.now(), owner_.id(), peer_,
                                               queue_->byte_length(), fill_fraction()));
    try_transmit();
  }
}

void Interface::try_transmit() {
  if (busy_ || !up_ || queued_packets_ == 0) return;
  auto popped = queue_->dequeue(sim_.now());
  if (!popped) return;
  --queued_packets_;
  start_transmit(*std::move(popped));
}

// One two-stage event carries the packet across the wire: it fires at
// end of serialization (transmitter frees up, packet starts propagating),
// rearms itself in place for the propagation delay, and fires again at
// arrival — the packet never leaves the event record between the stages.
// Dispatch order and times are identical to scheduling a separate
// propagation event; only the slot churn (a Packet-sized callable move
// per hop) is gone. The event carries the down-epoch observed at schedule
// time: if the link fails underneath it, the packet is lost instead of
// delivered (interfaces are never destroyed before the simulator, so
// holding `self` is safe).
struct Interface::TransmitEvent {
  Interface* self;
  std::uint64_t epoch;
  Packet p;
  bool propagating = false;

  void operator()() {
    if (propagating) {  // stage 2: arrival at the peer
      if (epoch != self->down_epoch_) {
        self->notify_drop(p, DropReason::kLinkDown);
        return;
      }
      if (self->peer_node_ != nullptr) self->peer_node_->receive(std::move(p), self->owner_.id());
      return;
    }
    self->busy_ = false;  // stage 1: end of serialization
    if (epoch != self->down_epoch_) {
      self->notify_drop(p, DropReason::kLinkDown);
      self->try_transmit();
      return;
    }
    LinkFault fault;
    if (self->fault_injector_) fault = self->fault_injector_(p, self->sim_.now());
    if (fault.drop) {
      self->notify_drop(p, DropReason::kLinkFault);
    } else if (self->remote_ && self->sim_.shard_lane() != nullptr) {
      // PoP-crossing link under the sharded engine: park the packet in
      // this PoP's lane with its arrival time. The propagation delay is at
      // least the conservative lookahead, so the arrival lands beyond the
      // current window and the barrier install is always a future
      // schedule on the peer PoP's simulator.
      self->sim_.shard_lane()->defer_data(
          self->sim_.now() + self->link_.delay + fault.extra_delay, self, epoch, std::move(p));
    } else {
      propagating = true;
      self->sim_.rearm_current(self->link_.delay + fault.extra_delay);
    }
    self->try_transmit();
  }
};

void Interface::complete_propagation(Packet&& p, std::uint64_t epoch) {
  // Same arrival semantics as TransmitEvent stage 2; runs on the peer
  // PoP's simulator via the barrier-installed delivery event.
  if (epoch != down_epoch_) {
    notify_drop(p, DropReason::kLinkDown);
    return;
  }
  if (peer_node_ != nullptr) peer_node_->receive(std::move(p), owner_.id());
}

void Interface::start_transmit(Packet p) {
  busy_ = true;
  FATIH_METRIC(sim_.packet_counters().transmitted, inc());
  for (const auto& tap : transmit_taps_) tap(p, sim_.now());
  // Serialization time for a given size is a pure function of the link;
  // macro workloads send one packet size almost exclusively, so a
  // one-entry memo skips the double math on the repeat.
  if (p.size_bytes != tx_memo_bytes_) {
    tx_memo_bytes_ = p.size_bytes;
    tx_memo_ = link_.tx_time(p.size_bytes);
  }
  sim_.schedule_emplace_in<TransmitEvent>(tx_memo_, this, down_epoch_, std::move(p));
}

// --------------------------------------------------------------------- Node

Node::Node(Simulator& sim, util::NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)) {}

Interface& Node::add_interface(util::NodeId peer, LinkParams link,
                               std::unique_ptr<OutputQueue> q) {
  interfaces_.push_back(
      std::make_unique<Interface>(sim_, *this, interfaces_.size(), peer, link, std::move(q)));
  return *interfaces_.back();
}

Interface* Node::interface_to(util::NodeId peer) {
  for (auto& iface : interfaces_) {
    if (iface->peer() == peer) return iface.get();
  }
  return nullptr;
}

void Node::fire_receive_taps(const Packet& p, util::NodeId prev) {
  for (const auto& tap : receive_taps_) tap(p, prev, sim_.now());
}

void Node::deliver_locally(const Packet& p, util::NodeId prev) {
  if (p.is_control()) {
    // Sharded engine: control sinks mutate detection-engine state that is
    // shared across PoPs, so the delivery is deferred to this PoP's lane
    // and replayed serially at the window barrier in canonical (time,
    // PoP, emission) order. Active at every worker count — including one —
    // so the replay order never depends on parallelism.
    if (ShardLane* lane = sim_.shard_lane()) {
      lane->defer_control(sim_.now(), this, prev, p);
      return;
    }
    for (const auto& sink : control_sinks_) sink(p, prev, sim_.now());
    return;
  }
  for (const auto& handler : local_handlers_) handler(p, prev, sim_.now());
}

// ------------------------------------------------------------------- Router

Router::Router(Simulator& sim, util::NodeId id, std::string name, std::uint64_t jitter_seed)
    : Node(sim, id, std::move(name)), rng_(jitter_seed) {}

void Router::set_route(util::NodeId dst, std::size_t out_iface) {
  assert(out_iface < interfaces_.size());
  routes_[dst] = out_iface;
}

void Router::set_policy_route(util::NodeId prev, util::NodeId dst, std::size_t out_iface) {
  assert(out_iface < interfaces_.size());
  policy_routes_[key(prev, dst)] = out_iface;
}

void Router::set_policy_drop(util::NodeId prev, util::NodeId dst) {
  policy_routes_[key(prev, dst)] = kDropRouteSentinel;
}

void Router::clear_routes() {
  routes_.clear();
  policy_routes_.clear();
}

std::optional<std::size_t> Router::lookup(util::NodeId prev, util::NodeId dst) const {
  if (auto it = policy_routes_.find(key(prev, dst)); it != policy_routes_.end()) {
    if (it->second == kDropRouteSentinel) return std::nullopt;
    return it->second;
  }
  if (auto it = routes_.find(dst); it != routes_.end()) return it->second;
  return std::nullopt;
}

void Router::set_processing_delay(util::Duration base, util::Duration max_jitter) {
  proc_base_ = base;
  proc_jitter_ = max_jitter;
}

void Router::originate(const Packet& p) {
  if (!up_) return;
  do_forward(p, id_);
}

void Router::originate(Packet&& p) {
  if (!up_) return;
  do_forward(std::move(p), id_);
}

struct Router::ProcessEvent {
  Router* self;
  Packet p;
  util::NodeId prev;

  void operator()() { self->do_forward(std::move(p), prev); }
};

void Router::receive(Packet p, util::NodeId prev) {
  if (!up_) {
    // A crashed router is a black hole: no taps, no forwarding — only the
    // ground-truth drop record.
    notify_router_drop(p, DropReason::kNodeDown);
    return;
  }
  fire_receive_taps(p, prev);
  if (p.hdr.dst == id_) {
    deliver_locally(p, prev);
    return;
  }
  // Forward after the (jittered) processing delay; the jitter is the
  // short-term scheduling noise that makes queue prediction statistical
  // (dissertation §6.2.1).
  util::Duration delay = proc_base_;
  if (proc_jitter_ > util::Duration{}) {
    delay += util::Duration::nanos(rng_.uniform_int(0, proc_jitter_.count_nanos()));
  }
  sim_.schedule_emplace_in<ProcessEvent>(delay, this, std::move(p), prev);
}

void Router::do_forward(Packet p, util::NodeId prev) {
  if (!up_) {
    // Crash landed between receive and the processing-delay event.
    notify_router_drop(p, DropReason::kNodeDown);
    return;
  }
  if (p.hdr.ttl == 0 || --p.hdr.ttl == 0) {
    notify_router_drop(p, DropReason::kTtlExpired);
    return;
  }
  std::size_t out_iface;
  if (p.source_route != nullptr) {
    // Strict source routing: follow the embedded node sequence.
    const auto& route = *p.source_route;
    if (p.route_hop + 1U >= route.size() || route[p.route_hop] != id_) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    ++p.route_hop;
    auto* iface = interface_to(route[p.route_hop]);
    if (iface == nullptr) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    out_iface = iface->index();
  } else {
    const auto out = lookup(prev, p.hdr.dst);
    if (!out) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    out_iface = *out;
  }

  if (filter_ != nullptr) {
    auto decision = filter_->on_forward(p, prev, *interfaces_[out_iface], *this);
    if (decision.action == ForwardDecision::Action::kDrop) {
      ++malicious_drops_;
      notify_router_drop(p, DropReason::kMalicious);
      return;
    }
    if (decision.replacement) p = *std::move(decision.replacement);
    if (decision.iface_override) out_iface = *decision.iface_override;
    if (decision.extra_delay > util::Duration{}) {
      const auto d = decision.extra_delay;
      sim_.schedule_in(d, [this, p = std::move(p), prev, out_iface]() mutable {
        FATIH_METRIC(sim_.packet_counters().forwarded, inc());
        for (const auto& tap : forward_taps_) tap(p, prev, out_iface, sim_.now());
        interfaces_[out_iface]->send(std::move(p));
      });
      return;
    }
  }

  FATIH_METRIC(sim_.packet_counters().forwarded, inc());
  for (const auto& tap : forward_taps_) tap(p, prev, out_iface, sim_.now());
  interfaces_[out_iface]->send(std::move(p));
}

void Router::notify_router_drop(const Packet& p, DropReason reason) {
  FATIH_METRIC(sim_.packet_counters().drops[static_cast<std::size_t>(reason)], inc());
  FATIH_TRACE_EMIT(sim_.trace(),
                   drop(sim_.now(), drop_code(reason), id_, util::kInvalidNode, p.uid));
  for (const auto& tap : drop_taps_) tap(p, sim_.now(), reason);
}

// --------------------------------------------------------------------- Host

Host::Host(Simulator& sim, util::NodeId id, std::string name) : Node(sim, id, std::move(name)) {}

void Host::send(const Packet& p) {
  if (!up_) return;
  if (p.hdr.dst == id_) {
    deliver_locally(p, id_);
    return;
  }
  assert(!interfaces_.empty());
  interfaces_.front()->send(p);
}

void Host::send(Packet&& p) {
  if (!up_) return;
  if (p.hdr.dst == id_) {
    deliver_locally(p, id_);
    return;
  }
  assert(!interfaces_.empty());
  interfaces_.front()->send(std::move(p));
}

void Host::send_batch(std::span<const Packet> batch) {
  if (!up_ || batch.empty()) return;
  assert(!interfaces_.empty());
  // Loopback packets are not expected in bursts; route everything to the
  // gateway in one admission walk.
  std::vector<EnqueueResult> results(batch.size());
  interfaces_.front()->send_batch(batch, results.data());
}

void Host::receive(Packet p, util::NodeId prev) {
  if (!up_) return;
  fire_receive_taps(p, prev);
  if (p.hdr.dst == id_) {
    deliver_locally(p, prev);
  }
  // Hosts never forward transit traffic.
}

}  // namespace fatih::sim
