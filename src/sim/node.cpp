#include "sim/node.hpp"

#include <cassert>

#include "util/log.hpp"

namespace fatih::sim {

namespace {

/// DropReason -> TraceCode, exhaustively (the kDrop block mirrors the enum,
/// but the switch keeps the mapping honest if either side is reordered).
[[maybe_unused]] obs::TraceCode drop_code(DropReason reason) {
  switch (reason) {
    case DropReason::kCongestion: return obs::TraceCode::kDropCongestion;
    case DropReason::kRedEarly: return obs::TraceCode::kDropRedEarly;
    case DropReason::kMalicious: return obs::TraceCode::kDropMalicious;
    case DropReason::kTtlExpired: return obs::TraceCode::kDropTtlExpired;
    case DropReason::kNoRoute: return obs::TraceCode::kDropNoRoute;
    case DropReason::kLinkFault: return obs::TraceCode::kDropLinkFault;
    case DropReason::kLinkDown: return obs::TraceCode::kDropLinkDown;
    case DropReason::kNodeDown: return obs::TraceCode::kDropNodeDown;
  }
  return obs::TraceCode::kNone;
}

}  // namespace

// ---------------------------------------------------------------- Interface

Interface::Interface(Simulator& sim, Node& owner, std::size_t index, util::NodeId peer,
                     LinkParams link, std::unique_ptr<OutputQueue> queue)
    : sim_(sim),
      owner_(owner),
      index_(index),
      peer_(peer),
      link_(link),
      queue_(std::move(queue)) {
  assert(queue_ != nullptr);
}

double Interface::fill_fraction() const {
  const auto limit = queue_->byte_limit();
  if (limit == 0) return 0.0;
  return static_cast<double>(queue_->byte_length()) / static_cast<double>(limit);
}

EnqueueResult Interface::send(const Packet& p) {
  if (!up_) {
    notify_drop(p, DropReason::kLinkDown);
    return EnqueueResult::kDroppedLinkDown;
  }
  const auto result = queue_->enqueue(p, sim_.now());
  switch (result) {
    case EnqueueResult::kAccepted: {
      [[maybe_unused]] obs::PacketCounters& pc = sim_.packet_counters();
      FATIH_METRIC(pc.enqueued, inc());
      FATIH_METRIC(pc.queue_fill, add(fill_fraction()));
      FATIH_TRACE_EMIT(sim_.trace(), queue_depth(sim_.now(), owner_.id(), peer_,
                                                 queue_->byte_length(), fill_fraction()));
      for (const auto& tap : enqueue_taps_) tap(p, sim_.now());
      try_transmit();
      break;
    }
    case EnqueueResult::kDroppedFull:
      notify_drop(p, DropReason::kCongestion);
      break;
    case EnqueueResult::kDroppedRedEarly:
      notify_drop(p, DropReason::kRedEarly);
      break;
    case EnqueueResult::kDroppedLinkDown:
      notify_drop(p, DropReason::kLinkDown);
      break;
  }
  return result;
}

void Interface::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up_) {
    // Invalidate the in-flight serialization/propagation events and lose
    // everything waiting in the queue: a cut link keeps nothing.
    ++down_epoch_;
    while (auto popped = queue_->dequeue(sim_.now())) {
      notify_drop(*popped, DropReason::kLinkDown);
    }
  } else if (!busy_) {
    try_transmit();
  }
}

void Interface::notify_drop(const Packet& p, DropReason reason) {
  FATIH_METRIC(sim_.packet_counters().drops[static_cast<std::size_t>(reason)], inc());
  FATIH_TRACE_EMIT(sim_.trace(),
                   drop(sim_.now(), drop_code(reason), owner_.id(), peer_, p.uid));
  for (const auto& tap : drop_taps_) tap(p, sim_.now(), reason);
}

void Interface::try_transmit() {
  if (busy_ || !up_) return;
  auto popped = queue_->dequeue(sim_.now());
  if (!popped) return;
  busy_ = true;
  Packet p = *std::move(popped);
  FATIH_METRIC(sim_.packet_counters().transmitted, inc());
  for (const auto& tap : transmit_taps_) tap(p, sim_.now());
  const auto tx = link_.tx_time(p.size_bytes);
  // End of serialization: the transmitter frees up and the packet begins
  // propagating to the peer. The packet is moved (never copied) through
  // the serialization and propagation events. Both events carry the
  // down-epoch observed at schedule time: if the link fails underneath
  // them, the packet is lost instead of delivered (interfaces are never
  // destroyed before the simulator, so capturing `this` is safe).
  sim_.schedule_in(tx, [this, epoch = down_epoch_, p = std::move(p)]() mutable {
    busy_ = false;
    if (epoch != down_epoch_) {
      notify_drop(p, DropReason::kLinkDown);
      try_transmit();
      return;
    }
    LinkFault fault;
    if (fault_injector_) fault = fault_injector_(p, sim_.now());
    if (fault.drop) {
      notify_drop(p, DropReason::kLinkFault);
    } else {
      const util::NodeId from = owner_.id();
      sim_.schedule_in(link_.delay + fault.extra_delay,
                       [this, epoch, p = std::move(p), from]() mutable {
                         if (epoch != down_epoch_) {
                           notify_drop(p, DropReason::kLinkDown);
                           return;
                         }
                         if (peer_node_ != nullptr) peer_node_->receive(std::move(p), from);
                       });
    }
    try_transmit();
  });
}

// --------------------------------------------------------------------- Node

Node::Node(Simulator& sim, util::NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)) {}

Interface& Node::add_interface(util::NodeId peer, LinkParams link,
                               std::unique_ptr<OutputQueue> q) {
  interfaces_.push_back(
      std::make_unique<Interface>(sim_, *this, interfaces_.size(), peer, link, std::move(q)));
  return *interfaces_.back();
}

Interface* Node::interface_to(util::NodeId peer) {
  for (auto& iface : interfaces_) {
    if (iface->peer() == peer) return iface.get();
  }
  return nullptr;
}

void Node::fire_receive_taps(const Packet& p, util::NodeId prev) {
  for (const auto& tap : receive_taps_) tap(p, prev, sim_.now());
}

void Node::deliver_locally(const Packet& p, util::NodeId prev) {
  if (p.is_control()) {
    for (const auto& sink : control_sinks_) sink(p, prev, sim_.now());
    return;
  }
  for (const auto& handler : local_handlers_) handler(p, prev, sim_.now());
}

// ------------------------------------------------------------------- Router

Router::Router(Simulator& sim, util::NodeId id, std::string name, std::uint64_t jitter_seed)
    : Node(sim, id, std::move(name)), rng_(jitter_seed) {}

void Router::set_route(util::NodeId dst, std::size_t out_iface) {
  assert(out_iface < interfaces_.size());
  routes_[dst] = out_iface;
}

void Router::set_policy_route(util::NodeId prev, util::NodeId dst, std::size_t out_iface) {
  assert(out_iface < interfaces_.size());
  policy_routes_[key(prev, dst)] = out_iface;
}

void Router::set_policy_drop(util::NodeId prev, util::NodeId dst) {
  policy_routes_[key(prev, dst)] = kDropRouteSentinel;
}

void Router::clear_routes() {
  routes_.clear();
  policy_routes_.clear();
}

std::optional<std::size_t> Router::lookup(util::NodeId prev, util::NodeId dst) const {
  if (auto it = policy_routes_.find(key(prev, dst)); it != policy_routes_.end()) {
    if (it->second == kDropRouteSentinel) return std::nullopt;
    return it->second;
  }
  if (auto it = routes_.find(dst); it != routes_.end()) return it->second;
  return std::nullopt;
}

void Router::set_processing_delay(util::Duration base, util::Duration max_jitter) {
  proc_base_ = base;
  proc_jitter_ = max_jitter;
}

void Router::originate(const Packet& p) {
  if (!up_) return;
  do_forward(p, id_);
}

void Router::receive(Packet p, util::NodeId prev) {
  if (!up_) {
    // A crashed router is a black hole: no taps, no forwarding — only the
    // ground-truth drop record.
    notify_router_drop(p, DropReason::kNodeDown);
    return;
  }
  fire_receive_taps(p, prev);
  if (p.hdr.dst == id_) {
    deliver_locally(p, prev);
    return;
  }
  // Forward after the (jittered) processing delay; the jitter is the
  // short-term scheduling noise that makes queue prediction statistical
  // (dissertation §6.2.1).
  util::Duration delay = proc_base_;
  if (proc_jitter_ > util::Duration{}) {
    delay += util::Duration::nanos(rng_.uniform_int(0, proc_jitter_.count_nanos()));
  }
  sim_.schedule_in(delay,
                   [this, p = std::move(p), prev]() mutable { do_forward(std::move(p), prev); });
}

void Router::do_forward(Packet p, util::NodeId prev) {
  if (!up_) {
    // Crash landed between receive and the processing-delay event.
    notify_router_drop(p, DropReason::kNodeDown);
    return;
  }
  if (p.hdr.ttl == 0 || --p.hdr.ttl == 0) {
    notify_router_drop(p, DropReason::kTtlExpired);
    return;
  }
  std::size_t out_iface;
  if (p.source_route != nullptr) {
    // Strict source routing: follow the embedded node sequence.
    const auto& route = *p.source_route;
    if (p.route_hop + 1U >= route.size() || route[p.route_hop] != id_) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    ++p.route_hop;
    auto* iface = interface_to(route[p.route_hop]);
    if (iface == nullptr) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    out_iface = iface->index();
  } else {
    const auto out = lookup(prev, p.hdr.dst);
    if (!out) {
      notify_router_drop(p, DropReason::kNoRoute);
      return;
    }
    out_iface = *out;
  }

  if (filter_ != nullptr) {
    auto decision = filter_->on_forward(p, prev, *interfaces_[out_iface], *this);
    if (decision.action == ForwardDecision::Action::kDrop) {
      ++malicious_drops_;
      notify_router_drop(p, DropReason::kMalicious);
      return;
    }
    if (decision.replacement) p = *std::move(decision.replacement);
    if (decision.iface_override) out_iface = *decision.iface_override;
    if (decision.extra_delay > util::Duration{}) {
      const auto d = decision.extra_delay;
      sim_.schedule_in(d, [this, p = std::move(p), prev, out_iface]() mutable {
        FATIH_METRIC(sim_.packet_counters().forwarded, inc());
        for (const auto& tap : forward_taps_) tap(p, prev, out_iface, sim_.now());
        interfaces_[out_iface]->send(p);
      });
      return;
    }
  }

  FATIH_METRIC(sim_.packet_counters().forwarded, inc());
  for (const auto& tap : forward_taps_) tap(p, prev, out_iface, sim_.now());
  interfaces_[out_iface]->send(p);
}

void Router::notify_router_drop(const Packet& p, DropReason reason) {
  FATIH_METRIC(sim_.packet_counters().drops[static_cast<std::size_t>(reason)], inc());
  FATIH_TRACE_EMIT(sim_.trace(),
                   drop(sim_.now(), drop_code(reason), id_, util::kInvalidNode, p.uid));
  for (const auto& tap : drop_taps_) tap(p, sim_.now(), reason);
}

// --------------------------------------------------------------------- Host

Host::Host(Simulator& sim, util::NodeId id, std::string name) : Node(sim, id, std::move(name)) {}

void Host::send(const Packet& p) {
  if (!up_) return;
  if (p.hdr.dst == id_) {
    deliver_locally(p, id_);
    return;
  }
  assert(!interfaces_.empty());
  interfaces_.front()->send(p);
}

void Host::receive(Packet p, util::NodeId prev) {
  if (!up_) return;
  fire_receive_taps(p, prev);
  if (p.hdr.dst == id_) {
    deliver_locally(p, prev);
  }
  // Hosts never forward transit traffic.
}

}  // namespace fatih::sim
