// Output-interface queues.
//
// Every router interface owns an output queue with a byte limit
// (dissertation §6: "the bandwidth, the delay of each link, and the queue
// limit for each interface are all known publicly"). The base interface is
// implemented by a drop-tail FIFO here and by RED in sim/red.hpp.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "sim/packet.hpp"
#include "util/time.hpp"

namespace fatih::sim {

/// Why a queue refused a packet.
enum class EnqueueResult {
  kAccepted,
  kDroppedFull,      ///< hard byte-limit overflow (drop-tail)
  kDroppedRedEarly,  ///< RED probabilistic early drop
  kDroppedLinkDown,  ///< interface refused the packet: link is down
};

/// FIFO output queue abstraction.
///
/// Invariant: byte_length() is the sum of size_bytes over queued packets
/// and never exceeds byte_limit().
class OutputQueue {
 public:
  virtual ~OutputQueue() = default;

  /// Offers a packet at time `now`; the queue may accept or drop it.
  virtual EnqueueResult enqueue(const Packet& p, util::SimTime now) = 0;

  /// Removes the head packet, if any. `now` lets RED track idle periods.
  virtual std::optional<Packet> dequeue(util::SimTime now) = 0;

  /// True iff enqueue(p) followed immediately by dequeue() would return
  /// `p` unchanged and leave NO lasting state behind — the idle-transmitter
  /// fast path in Interface::send then skips the queue entirely. A queue
  /// whose admission updates internal state on every offer (RED's average
  /// tracking) must keep the default `false`.
  [[nodiscard]] virtual bool pass_through(const Packet& p, util::SimTime now) const {
    (void)p;
    (void)now;
    return false;
  }

  /// Batched admission: offers `batch` in order, writing one verdict per
  /// packet into `results` (which must have batch.size() slots). The
  /// default loops over enqueue(); implementations override to amortize
  /// per-packet bookkeeping (capacity checks, byte accounting) across the
  /// batch. Verdict semantics are identical to per-packet enqueue in the
  /// same order.
  virtual void enqueue_batch(std::span<const Packet> batch, util::SimTime now,
                             EnqueueResult* results) {
    for (std::size_t i = 0; i < batch.size(); ++i) results[i] = enqueue(batch[i], now);
  }

  [[nodiscard]] virtual std::size_t byte_length() const = 0;
  [[nodiscard]] virtual std::size_t packet_count() const = 0;
  [[nodiscard]] virtual std::size_t byte_limit() const = 0;
};

/// Plain drop-tail FIFO: accept unless the byte limit would be exceeded.
class DropTailQueue final : public OutputQueue {
 public:
  explicit DropTailQueue(std::size_t byte_limit) : limit_(byte_limit) {}

  EnqueueResult enqueue(const Packet& p, util::SimTime now) override;
  std::optional<Packet> dequeue(util::SimTime now) override;
  /// Drop-tail keeps no admission state, so an empty queue passes a packet
  /// straight through whenever plain enqueue would have accepted it.
  [[nodiscard]] bool pass_through(const Packet& p, util::SimTime /*now*/) const override {
    return q_.empty() && (p.is_control() || p.size_bytes <= limit_);
  }
  void enqueue_batch(std::span<const Packet> batch, util::SimTime now,
                     EnqueueResult* results) override;
  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return q_.size(); }
  [[nodiscard]] std::size_t byte_limit() const override { return limit_; }

 private:
  std::size_t limit_;
  std::size_t bytes_ = 0;
  std::deque<Packet> q_;
};

}  // namespace fatih::sim
