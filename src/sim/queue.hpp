// Output-interface queues.
//
// Every router interface owns an output queue with a byte limit
// (dissertation §6: "the bandwidth, the delay of each link, and the queue
// limit for each interface are all known publicly"). The base interface is
// implemented by a drop-tail FIFO here and by RED in sim/red.hpp.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "sim/packet.hpp"
#include "util/time.hpp"

namespace fatih::sim {

/// Why a queue refused a packet.
enum class EnqueueResult {
  kAccepted,
  kDroppedFull,      ///< hard byte-limit overflow (drop-tail)
  kDroppedRedEarly,  ///< RED probabilistic early drop
  kDroppedLinkDown,  ///< interface refused the packet: link is down
};

/// FIFO output queue abstraction.
///
/// Invariant: byte_length() is the sum of size_bytes over queued packets
/// and never exceeds byte_limit().
class OutputQueue {
 public:
  virtual ~OutputQueue() = default;

  /// Offers a packet at time `now`; the queue may accept or drop it.
  virtual EnqueueResult enqueue(const Packet& p, util::SimTime now) = 0;

  /// Removes the head packet, if any. `now` lets RED track idle periods.
  virtual std::optional<Packet> dequeue(util::SimTime now) = 0;

  [[nodiscard]] virtual std::size_t byte_length() const = 0;
  [[nodiscard]] virtual std::size_t packet_count() const = 0;
  [[nodiscard]] virtual std::size_t byte_limit() const = 0;
};

/// Plain drop-tail FIFO: accept unless the byte limit would be exceeded.
class DropTailQueue final : public OutputQueue {
 public:
  explicit DropTailQueue(std::size_t byte_limit) : limit_(byte_limit) {}

  EnqueueResult enqueue(const Packet& p, util::SimTime now) override;
  std::optional<Packet> dequeue(util::SimTime now) override;
  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return q_.size(); }
  [[nodiscard]] std::size_t byte_limit() const override { return limit_; }

 private:
  std::size_t limit_;
  std::size_t bytes_ = 0;
  std::deque<Packet> q_;
};

}  // namespace fatih::sim
