#include "sim/packet.hpp"

#include "util/log.hpp"

namespace fatih::sim {

std::string describe(const Packet& p) {
  const char* proto = p.hdr.proto == Protocol::kUdp     ? "udp"
                      : p.hdr.proto == Protocol::kTcp   ? "tcp"
                                                        : "ctl";
  return util::strfmt("%s flow=%u seq=%u %s->%s %uB", proto, p.hdr.flow_id, p.hdr.seq,
                      util::node_name(p.hdr.src).c_str(), util::node_name(p.hdr.dst).c_str(),
                      p.size_bytes);
}

}  // namespace fatih::sim
