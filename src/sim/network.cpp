#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>

#include "util/hash.hpp"

namespace fatih::sim {

Network::Network(std::uint64_t seed) : seed_(seed), rng_(seed) {}

Network::Network(std::uint64_t seed, ShardPlan plan)
    : seed_(seed), rng_(seed), plan_(std::move(plan)) {
  // An empty plan degrades to the classic single-simulator network, so
  // callers can build either mode through one constructor.
  if (plan_.pops == 0) return;
  assert(plan_.lookahead > util::Duration{});
  pop_sims_.reserve(plan_.pops);
  for (std::uint32_t pop = 0; pop < plan_.pops; ++pop) {
    pop_sims_.push_back(std::make_unique<Simulator>());
  }
}

Router& Network::add_router(std::string name) {
  const auto id = static_cast<util::NodeId>(nodes_.size());
  nodes_.push_back(
      std::make_unique<Router>(node_sim(id), id, std::move(name), rng_.next_u64()));
  node_is_router_.push_back(true);
  if (sharded()) identities_.push_back(NodeIdentity{util::Rng(rng_.next_u64()), 1});
  return static_cast<Router&>(*nodes_.back());
}

Host& Network::add_host(std::string name) {
  const auto id = static_cast<util::NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Host>(node_sim(id), id, std::move(name)));
  node_is_router_.push_back(false);
  if (sharded()) identities_.push_back(NodeIdentity{util::Rng(rng_.next_u64()), 1});
  return static_cast<Host&>(*nodes_.back());
}

std::unique_ptr<OutputQueue> Network::make_queue(const LinkConfig& cfg) {
  if (cfg.queue == QueueKind::kRed) {
    return std::make_unique<RedQueue>(cfg.red, rng_.next_u64());
  }
  return std::make_unique<DropTailQueue>(cfg.queue_limit_bytes);
}

void Network::connect(util::NodeId a, util::NodeId b, const LinkConfig& cfg) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  const LinkParams link{cfg.bandwidth_bps, cfg.delay};

  Interface& ab = nodes_[a]->add_interface(b, link, make_queue(cfg));
  Interface& ba = nodes_[b]->add_interface(a, link, make_queue(cfg));
  ab.set_peer_node(nodes_[b].get());
  ba.set_peer_node(nodes_[a].get());
  if (sharded() && plan_.remote(a, b)) {
    // PoP-crossing traffic goes through the shard lanes; the conservative
    // window is only sound if every such link respects the lookahead.
    assert(cfg.delay >= plan_.lookahead);
    ab.set_remote(true);
    ba.set_remote(true);
  }

  adjacencies_.push_back(Adjacency{a, b, cfg.metric, link});
  adjacencies_.push_back(Adjacency{b, a, cfg.metric, link});
}

void Network::apply_interface_states(util::NodeId id) {
  Node& n = *nodes_.at(id);
  for (std::size_t i = 0; i < n.interface_count(); ++i) {
    Interface& iface = n.interface(i);
    iface.set_up(n.up() && link_admin_up(id, iface.peer()));
  }
}

void Network::set_link_up(util::NodeId a, util::NodeId b, bool up) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  const auto key = link_key(a, b);
  const bool currently_up = link_admin_down_.find(key) == link_admin_down_.end();
  if (currently_up == up) return;
  if (up) {
    link_admin_down_.erase(key);
  } else {
    link_admin_down_[key] = true;
  }
  if (Interface* ab = nodes_[a]->interface_to(b)) ab->set_up(up && nodes_[a]->up());
  if (Interface* ba = nodes_[b]->interface_to(a)) ba->set_up(up && nodes_[b]->up());
  FATIH_TRACE_EMIT(sim_.trace(),
                   route(sim_.now(), up ? obs::TraceCode::kLinkUp : obs::TraceCode::kLinkDown,
                         a, b));
  for (const auto& hook : link_hooks_) hook(a, b, up, sim_.now());
}

bool Network::link_admin_up(util::NodeId a, util::NodeId b) const {
  return link_admin_down_.find(link_key(a, b)) == link_admin_down_.end();
}

bool Network::link_usable(util::NodeId a, util::NodeId b) const {
  return link_admin_up(a, b) && nodes_.at(a)->up() && nodes_.at(b)->up();
}

void Network::crash_router(util::NodeId id) {
  Router& r = router(id);
  if (!r.up()) return;
  r.set_up(false);
  apply_interface_states(id);
  // Forwarding tables are soft state: gone with the crash. Policy routes
  // (the response mechanism's exclusions) go with them — a restarted
  // router must re-learn them from re-flooded alerts.
  r.clear_routes();
  FATIH_TRACE_EMIT(sim_.trace(), route(sim_.now(), obs::TraceCode::kNodeDown, id));
  for (const auto& hook : node_hooks_) hook(id, false, sim_.now());
}

void Network::restart_router(util::NodeId id) {
  Router& r = router(id);
  if (r.up()) return;
  r.set_up(true);
  apply_interface_states(id);
  FATIH_TRACE_EMIT(sim_.trace(), route(sim_.now(), obs::TraceCode::kNodeUp, id));
  for (const auto& hook : node_hooks_) hook(id, true, sim_.now());
}

Router& Network::router(util::NodeId id) {
  if (!is_router(id)) throw std::logic_error("node is not a router");
  return static_cast<Router&>(*nodes_.at(id));
}

Host& Network::host(util::NodeId id) {
  if (is_router(id)) throw std::logic_error("node is not a host");
  return static_cast<Host&>(*nodes_.at(id));
}

bool Network::is_router(util::NodeId id) const { return node_is_router_.at(id); }

void Network::attach_observability(obs::TraceSink* trace, obs::MetricsRegistry* metrics) {
  sim_.set_trace(trace);
  sim_.set_metrics(metrics);
  obs::PacketCounters& pc = sim_.packet_counters();
  pc = obs::PacketCounters{};
  if (metrics == nullptr) return;
  // Index order mirrors sim::DropReason (asserted in tests/obs).
  static constexpr const char* kDropNames[obs::PacketCounters::kDropKinds] = {
      "sim.drop.congestion", "sim.drop.red_early",  "sim.drop.malicious",
      "sim.drop.ttl_expired", "sim.drop.no_route",  "sim.drop.link_fault",
      "sim.drop.link_down",   "sim.drop.node_down",
  };
  for (std::size_t i = 0; i < obs::PacketCounters::kDropKinds; ++i) {
    pc.drops[i] = &metrics->counter(kDropNames[i]);
  }
  pc.enqueued = &metrics->counter("sim.enqueued");
  pc.transmitted = &metrics->counter("sim.transmitted");
  pc.forwarded = &metrics->counter("sim.forwarded");
  pc.queue_fill = &metrics->ewma("sim.queue.fill_ewma", 0.05);
}

Packet Network::make_packet(PacketHeader hdr, std::uint32_t payload_bytes) {
  Packet p;
  p.hdr = hdr;
  p.size_bytes = kHeaderBytes + payload_bytes;
  if (sharded()) {
    // Per-node identity streams: the creating node's PoP worker is the
    // only consumer, so no global state is touched from the parallel pass,
    // and the stream position is a function of that PoP's (worker-count-
    // invariant) event order alone. Uids stay globally unique by packing
    // the node id into the high bits.
    NodeIdentity& ident = identities_.at(hdr.src);
    p.payload_tag = ident.rng.next_u64();
    p.uid = (static_cast<std::uint64_t>(hdr.src) + 1) << 40 | ident.next_uid++;
    p.created = node_sim(hdr.src).now();
  } else {
    p.payload_tag = rng_.next_u64();
    p.uid = next_uid_++;
    p.created = sim_.now();
  }
  return p;
}

std::uint64_t Network::rng_fingerprint() const {
  std::uint64_t h = util::fnv1a64_word(util::kFnvOffsetBasis, rng_.state_hash());
  for (const NodeIdentity& ident : identities_) {
    h = util::fnv1a64_word(h, ident.rng.state_hash());
    h = util::fnv1a64_word(h, ident.next_uid);
  }
  return h;
}

}  // namespace fatih::sim
