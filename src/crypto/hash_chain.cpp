#include "crypto/hash_chain.hpp"

namespace fatih::crypto {

namespace {
constexpr SipKey kChainKey{0x4841534843484149ULL, 0x4F4E455741594648ULL};
}  // namespace

HashChain::HashChain(std::uint64_t seed, std::size_t length) {
  values_.resize(length + 1);
  values_[length] = seed;
  for (std::size_t i = length; i > 0; --i) {
    values_[i - 1] = step(values_[i]);
  }
}

std::uint64_t HashChain::step(std::uint64_t value) {
  return siphash24(kChainKey, &value, sizeof(value));
}

bool HashChain::verify(std::uint64_t anchor, std::uint64_t value, std::size_t position) {
  std::uint64_t v = value;
  for (std::size_t i = 0; i < position; ++i) v = step(v);
  return v == anchor;
}

}  // namespace fatih::crypto
