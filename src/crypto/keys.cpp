#include "crypto/keys.hpp"

#include <algorithm>
#include <array>

namespace fatih::crypto {

namespace {

// Domain-separation tags for the different key families.
constexpr std::uint64_t kPairwiseTag = 0x5041495257495345ULL;     // "PAIRWISE"
constexpr std::uint64_t kSigningTag = 0x5349474E4B455931ULL;      // "SIGNKEY1"
constexpr std::uint64_t kFingerprintTag = 0x4650224B45593221ULL;  // fp key tag

SipKey derive(std::uint64_t master, std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  const SipKey root{master, tag};
  const std::array<std::uint64_t, 2> material{a, b};
  const std::uint64_t k0 = siphash24(root, material.data(), sizeof(material));
  const SipKey root2{master ^ 0x9E3779B97F4A7C15ULL, tag};
  const std::uint64_t k1 = siphash24(root2, material.data(), sizeof(material));
  return SipKey{k0, k1};
}

}  // namespace

SipKey KeyRegistry::pairwise_key(util::NodeId a, util::NodeId b) const {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return derive(master_seed_, kPairwiseTag, lo, hi);
}

SipKey KeyRegistry::signing_key(util::NodeId r) const {
  return derive(master_seed_, kSigningTag, r, 0);
}

SipKey KeyRegistry::fingerprint_key(util::NodeId r, util::NodeId peer) const {
  const auto lo = std::min(r, peer);
  const auto hi = std::max(r, peer);
  return derive(master_seed_, kFingerprintTag, lo, hi);
}

}  // namespace fatih::crypto
