// Key registry: simulated key distribution.
//
// The dissertation assumes "the administrative ability to assign and
// distribute shared keys to sets of nearby routers" (§4.1) plus digital
// signatures for consensus and reliable broadcast (§5.1). We simulate that
// infrastructure: a registry deterministically derives (a) a pairwise
// symmetric key for every unordered router pair and (b) a per-router
// signing key, all from one master seed. Faulty routers hold only their
// own keys, so they cannot forge other routers' MACs or signatures —
// exactly the guarantee the real infrastructure would provide.
#pragma once

#include <cstdint>

#include "crypto/siphash.hpp"
#include "util/types.hpp"

namespace fatih::crypto {

/// Derives every key in the deployment from a master seed.
///
/// This object stands in for the offline administrative key distribution /
/// IKE exchange; protocol code must only request keys it would legitimately
/// hold (enforced by convention, checked in tests via the SignedEnvelope
/// verify path).
class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// Symmetric key shared by routers a and b (order-independent).
  [[nodiscard]] SipKey pairwise_key(util::NodeId a, util::NodeId b) const;

  /// Per-router signing key (models the private half of a signature pair).
  [[nodiscard]] SipKey signing_key(util::NodeId r) const;

  /// Key under which router r fingerprints packets for path-segment
  /// validation rounds, shared with the far end `peer` of the segment.
  /// Distinct from pairwise_key so that compromising the MAC channel does
  /// not reveal the sampling/fingerprint key (cf. SATS-style secrecy).
  [[nodiscard]] SipKey fingerprint_key(util::NodeId r, util::NodeId peer) const;

 private:
  std::uint64_t master_seed_;
};

}  // namespace fatih::crypto
