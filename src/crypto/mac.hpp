// Message authentication and simulated digital signatures.
//
// Detection announcements, consensus messages and traffic summaries are
// exchanged as signed envelopes (dissertation §5.1: "data is digitally
// signed to prevent an attack during consensus", notation [x]_i). We model
// a signature as a MAC under the signer's private signing key; verifiers
// consult the KeyRegistry, which plays the role of the public-key
// infrastructure. A faulty router can refuse to sign or sign garbage, but
// cannot produce a valid envelope for another router's identity.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/siphash.hpp"
#include "util/types.hpp"

namespace fatih::crypto {

/// MAC tag (64-bit; plenty for a simulation adversary).
using MacTag = std::uint64_t;

/// Computes a MAC of `data` under `key` (keyed-hash construction).
[[nodiscard]] MacTag compute_mac(SipKey key, std::span<const std::byte> data);

/// A byte blob attributed to a signer, as flooded through the network.
struct SignedEnvelope {
  util::NodeId signer = util::kInvalidNode;
  std::vector<std::byte> payload;
  MacTag tag = 0;

  bool operator==(const SignedEnvelope&) const = default;
};

/// Signs `payload` as router `signer` using its signing key from `reg`.
[[nodiscard]] SignedEnvelope sign(const KeyRegistry& reg, util::NodeId signer,
                                  std::vector<std::byte> payload);

/// Verifies an envelope against the registry; false on any mismatch.
[[nodiscard]] bool verify(const KeyRegistry& reg, const SignedEnvelope& env);

/// Serialization helper: appends a trivially-copyable value to a byte blob.
template <typename T>
void append_bytes(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Deserialization helper: reads a trivially-copyable value at `offset`
/// and advances it. Returns false if the blob is too short.
template <typename T>
[[nodiscard]] bool read_bytes(std::span<const std::byte> in, std::size_t& offset, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (offset + sizeof(T) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace fatih::crypto
