#include "crypto/mac.hpp"

namespace fatih::crypto {

MacTag compute_mac(SipKey key, std::span<const std::byte> data) {
  // Two-pass keyed hash (HMAC-style inner/outer) to harden against
  // extension-style mischief; SipHash itself is already a PRF, so this is
  // belt-and-braces.
  const std::uint64_t inner = siphash24(key, data);
  const SipKey outer_key{key.k0 ^ 0x5C5C5C5C5C5C5C5CULL, key.k1 ^ 0x3636363636363636ULL};
  return siphash24(outer_key, &inner, sizeof(inner));
}

SignedEnvelope sign(const KeyRegistry& reg, util::NodeId signer, std::vector<std::byte> payload) {
  SignedEnvelope env;
  env.signer = signer;
  env.payload = std::move(payload);
  // Bind the signer identity into the tag so an envelope cannot be re-attributed.
  std::vector<std::byte> bound;
  bound.reserve(env.payload.size() + sizeof(signer));
  append_bytes(bound, signer);
  bound.insert(bound.end(), env.payload.begin(), env.payload.end());
  env.tag = compute_mac(reg.signing_key(signer), bound);
  return env;
}

bool verify(const KeyRegistry& reg, const SignedEnvelope& env) {
  if (env.signer == util::kInvalidNode) return false;
  std::vector<std::byte> bound;
  bound.reserve(env.payload.size() + sizeof(env.signer));
  append_bytes(bound, env.signer);
  bound.insert(bound.end(), env.payload.begin(), env.payload.end());
  return compute_mac(reg.signing_key(env.signer), bound) == env.tag;
}

}  // namespace fatih::crypto
