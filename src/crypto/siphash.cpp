#include "crypto/siphash.hpp"

namespace fatih::crypto {

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) {
  const SipSchedule sched(key);
  detail::SipState s{sched.v0, sched.v1, sched.v2, sched.v3};

  const auto* in = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;

  for (std::size_t i = 0; i < full_blocks; ++i) {
    s.absorb(detail::load_le64(in + i * 8));
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::size_t rem = len & 7;
  const std::uint8_t* tail = in + full_blocks * 8;
  for (std::size_t i = 0; i < rem; ++i) {
    last |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  }
  s.absorb(last);
  return s.finalize();
}

std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) {
  return siphash24(key, std::span<const std::byte>(static_cast<const std::byte*>(data), len));
}

}  // namespace fatih::crypto
