#include "crypto/siphash.hpp"

#if FATIH_SIPHASH_SIMD
#include <immintrin.h>
#endif

namespace fatih::crypto {

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) {
  const SipSchedule sched(key);
  detail::SipState s{sched.v0, sched.v1, sched.v2, sched.v3};

  const auto* in = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;

  for (std::size_t i = 0; i < full_blocks; ++i) {
    s.absorb(detail::load_le64(in + i * 8));
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::size_t rem = len & 7;
  const std::uint8_t* tail = in + full_blocks * 8;
  for (std::size_t i = 0; i < rem; ++i) {
    last |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  }
  s.absorb(last);
  return s.finalize();
}

std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) {
  return siphash24(key, std::span<const std::byte>(static_cast<const std::byte*>(data), len));
}

// ------------------------------------------------------------ dispatch level

namespace {

SimdLevel detect_level() {
#if FATIH_SIPHASH_SIMD
  // SSE2 is part of the x86-64 baseline; the wider tiers need a probe.
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

// Cap defaults to the widest level, i.e. "whatever the CPU has". Not
// atomic: the simulator is single-threaded and tests flip it between runs.
SimdLevel g_simd_cap = SimdLevel::kAvx512;

}  // namespace

SimdLevel simd_level() {
  static const SimdLevel detected = detect_level();
  return g_simd_cap < detected ? g_simd_cap : detected;
}

SimdLevel set_simd_level_cap(SimdLevel cap) {
  const SimdLevel old = g_simd_cap;
  g_simd_cap = cap;
  return old;
}

std::size_t simd_batch_width() {
  switch (simd_level()) {
    case SimdLevel::kAvx512: return 16;
    case SimdLevel::kAvx2: return 8;
    case SimdLevel::kSse2: return 4;
    case SimdLevel::kScalar: return 1;
  }
  return 1;
}

#if FATIH_SIPHASH_SIMD

// ------------------------------------------------------------- SIMD kernels
//
// Layout: one vector register holds the same SipHash state variable for 2
// (SSE2) or 4 (AVX2) independent messages, and each kernel interleaves TWO
// such states — SipHash's round is a serial dependency chain, so a single
// vector state would leave the ALU ports idle; two interleaved states give
// the out-of-order core independent work every cycle. All operations are
// 64-bit lane-local adds, shifts and xors: no rounding, no reassociation,
// no cross-lane mixing — which is the whole determinism argument. The
// rotate-by-32 uses a 32-bit shuffle (one uop); the remaining rotates are
// shift/shift/or.

namespace detail {

namespace {

inline __m128i rotl64_sse(__m128i x, int b) {
  return _mm_or_si128(_mm_slli_epi64(x, b), _mm_srli_epi64(x, 64 - b));
}

inline __m128i rot32_sse(__m128i x) { return _mm_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1)); }

inline void sip_round_sse(__m128i& v0, __m128i& v1, __m128i& v2, __m128i& v3) {
  v0 = _mm_add_epi64(v0, v1);
  v1 = rotl64_sse(v1, 13);
  v1 = _mm_xor_si128(v1, v0);
  v0 = rot32_sse(v0);
  v2 = _mm_add_epi64(v2, v3);
  v3 = rotl64_sse(v3, 16);
  v3 = _mm_xor_si128(v3, v2);
  v0 = _mm_add_epi64(v0, v3);
  v3 = rotl64_sse(v3, 21);
  v3 = _mm_xor_si128(v3, v0);
  v2 = _mm_add_epi64(v2, v1);
  v1 = rotl64_sse(v1, 17);
  v1 = _mm_xor_si128(v1, v2);
  v2 = rot32_sse(v2);
}

__attribute__((target("avx2"))) inline __m256i rotl64_avx(__m256i x, int b) {
  return _mm256_or_si256(_mm256_slli_epi64(x, b), _mm256_srli_epi64(x, 64 - b));
}

__attribute__((target("avx2"))) inline __m256i rot32_avx(__m256i x) {
  return _mm256_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1));
}

__attribute__((target("avx2"))) inline void sip_round_avx(__m256i& v0, __m256i& v1, __m256i& v2,
                                                          __m256i& v3) {
  v0 = _mm256_add_epi64(v0, v1);
  v1 = rotl64_avx(v1, 13);
  v1 = _mm256_xor_si256(v1, v0);
  v0 = rot32_avx(v0);
  v2 = _mm256_add_epi64(v2, v3);
  v3 = rotl64_avx(v3, 16);
  v3 = _mm256_xor_si256(v3, v2);
  v0 = _mm256_add_epi64(v0, v3);
  v3 = rotl64_avx(v3, 21);
  v3 = _mm256_xor_si256(v3, v0);
  v2 = _mm256_add_epi64(v2, v1);
  v1 = rotl64_avx(v1, 17);
  v1 = _mm256_xor_si256(v1, v2);
  v2 = rot32_avx(v2);
}

// GCC's _mm512_rol_epi64 routes through _mm512_undefined_epi32(), whose
// deliberate self-initialization ("__Y = __Y") trips -Wuninitialized under
// -O0 -Werror even though the merge lanes are fully masked off. Silence the
// false positive for the AVX-512 kernels only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f"))) inline void sip_round_avx512(__m512i& v0, __m512i& v1,
                                                                __m512i& v2, __m512i& v3) {
  // vprolq makes every rotate a single instruction — this is what lifts
  // the AVX-512 tier past the shift/shift/or tiers below.
  v0 = _mm512_add_epi64(v0, v1);
  v1 = _mm512_rol_epi64(v1, 13);
  v1 = _mm512_xor_si512(v1, v0);
  v0 = _mm512_rol_epi64(v0, 32);
  v2 = _mm512_add_epi64(v2, v3);
  v3 = _mm512_rol_epi64(v3, 16);
  v3 = _mm512_xor_si512(v3, v2);
  v0 = _mm512_add_epi64(v0, v3);
  v3 = _mm512_rol_epi64(v3, 21);
  v3 = _mm512_xor_si512(v3, v0);
  v2 = _mm512_add_epi64(v2, v1);
  v1 = _mm512_rol_epi64(v1, 17);
  v1 = _mm512_xor_si512(v1, v2);
  v2 = _mm512_rol_epi64(v2, 32);
}

__attribute__((target("avx512f"))) inline __m512i load8_avx512(const std::uint8_t* in,
                                                               std::size_t msg_bytes,
                                                               std::size_t off) {
  return _mm512_set_epi64(static_cast<long long>(load_le64(in + 7 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 6 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 5 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 4 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 3 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 2 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + msg_bytes + off)),
                          static_cast<long long>(load_le64(in + off)));
}

}  // namespace

void sip4_sse2(const SipSchedule& sched, const std::uint8_t* in, std::size_t msg_bytes,
               std::uint64_t* out) {
  // State A carries messages 0-1, state B messages 2-3.
  __m128i a0 = _mm_set1_epi64x(static_cast<long long>(sched.v0));
  __m128i a1 = _mm_set1_epi64x(static_cast<long long>(sched.v1));
  __m128i a2 = _mm_set1_epi64x(static_cast<long long>(sched.v2));
  __m128i a3 = _mm_set1_epi64x(static_cast<long long>(sched.v3));
  __m128i b0 = a0, b1 = a1, b2 = a2, b3 = a3;

  const std::size_t nblocks = msg_bytes / 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * 8;
    const __m128i ma =
        _mm_set_epi64x(static_cast<long long>(load_le64(in + msg_bytes + off)),
                       static_cast<long long>(load_le64(in + off)));
    const __m128i mb =
        _mm_set_epi64x(static_cast<long long>(load_le64(in + 3 * msg_bytes + off)),
                       static_cast<long long>(load_le64(in + 2 * msg_bytes + off)));
    a3 = _mm_xor_si128(a3, ma);
    b3 = _mm_xor_si128(b3, mb);
    sip_round_sse(a0, a1, a2, a3);
    sip_round_sse(b0, b1, b2, b3);
    sip_round_sse(a0, a1, a2, a3);
    sip_round_sse(b0, b1, b2, b3);
    a0 = _mm_xor_si128(a0, ma);
    b0 = _mm_xor_si128(b0, mb);
  }

  // Final block (same for all lanes: fixed-length messages, no tail).
  const __m128i fin =
      _mm_set1_epi64x(static_cast<long long>(static_cast<std::uint64_t>(msg_bytes & 0xFF) << 56));
  a3 = _mm_xor_si128(a3, fin);
  b3 = _mm_xor_si128(b3, fin);
  sip_round_sse(a0, a1, a2, a3);
  sip_round_sse(b0, b1, b2, b3);
  sip_round_sse(a0, a1, a2, a3);
  sip_round_sse(b0, b1, b2, b3);
  a0 = _mm_xor_si128(a0, fin);
  b0 = _mm_xor_si128(b0, fin);

  const __m128i ff = _mm_set1_epi64x(0xFF);
  a2 = _mm_xor_si128(a2, ff);
  b2 = _mm_xor_si128(b2, ff);
  for (int r = 0; r < 4; ++r) {
    sip_round_sse(a0, a1, a2, a3);
    sip_round_sse(b0, b1, b2, b3);
  }

  const __m128i da = _mm_xor_si128(_mm_xor_si128(a0, a1), _mm_xor_si128(a2, a3));
  const __m128i db = _mm_xor_si128(_mm_xor_si128(b0, b1), _mm_xor_si128(b2, b3));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), da);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2), db);
}

__attribute__((target("avx2"))) void sip8_avx2(const SipSchedule& sched, const std::uint8_t* in,
                                               std::size_t msg_bytes, std::uint64_t* out) {
  // State A carries messages 0-3, state B messages 4-7.
  __m256i a0 = _mm256_set1_epi64x(static_cast<long long>(sched.v0));
  __m256i a1 = _mm256_set1_epi64x(static_cast<long long>(sched.v1));
  __m256i a2 = _mm256_set1_epi64x(static_cast<long long>(sched.v2));
  __m256i a3 = _mm256_set1_epi64x(static_cast<long long>(sched.v3));
  __m256i b0 = a0, b1 = a1, b2 = a2, b3 = a3;

  const std::size_t nblocks = msg_bytes / 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * 8;
    const __m256i ma =
        _mm256_set_epi64x(static_cast<long long>(load_le64(in + 3 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 2 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + msg_bytes + off)),
                          static_cast<long long>(load_le64(in + off)));
    const __m256i mb =
        _mm256_set_epi64x(static_cast<long long>(load_le64(in + 7 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 6 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 5 * msg_bytes + off)),
                          static_cast<long long>(load_le64(in + 4 * msg_bytes + off)));
    a3 = _mm256_xor_si256(a3, ma);
    b3 = _mm256_xor_si256(b3, mb);
    sip_round_avx(a0, a1, a2, a3);
    sip_round_avx(b0, b1, b2, b3);
    sip_round_avx(a0, a1, a2, a3);
    sip_round_avx(b0, b1, b2, b3);
    a0 = _mm256_xor_si256(a0, ma);
    b0 = _mm256_xor_si256(b0, mb);
  }

  const __m256i fin = _mm256_set1_epi64x(
      static_cast<long long>(static_cast<std::uint64_t>(msg_bytes & 0xFF) << 56));
  a3 = _mm256_xor_si256(a3, fin);
  b3 = _mm256_xor_si256(b3, fin);
  sip_round_avx(a0, a1, a2, a3);
  sip_round_avx(b0, b1, b2, b3);
  sip_round_avx(a0, a1, a2, a3);
  sip_round_avx(b0, b1, b2, b3);
  a0 = _mm256_xor_si256(a0, fin);
  b0 = _mm256_xor_si256(b0, fin);

  const __m256i ff = _mm256_set1_epi64x(0xFF);
  a2 = _mm256_xor_si256(a2, ff);
  b2 = _mm256_xor_si256(b2, ff);
  for (int r = 0; r < 4; ++r) {
    sip_round_avx(a0, a1, a2, a3);
    sip_round_avx(b0, b1, b2, b3);
  }

  const __m256i da = _mm256_xor_si256(_mm256_xor_si256(a0, a1), _mm256_xor_si256(a2, a3));
  const __m256i db = _mm256_xor_si256(_mm256_xor_si256(b0, b1), _mm256_xor_si256(b2, b3));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), da);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), db);
}

__attribute__((target("avx512f"))) void sip8_avx512(const SipSchedule& sched,
                                                    const std::uint8_t* in, std::size_t msg_bytes,
                                                    std::uint64_t* out) {
  // Single 8-lane state: latency-bound on the round's dependency chain,
  // but still the fastest 8-message kernel thanks to vprolq.
  __m512i v0 = _mm512_set1_epi64(static_cast<long long>(sched.v0));
  __m512i v1 = _mm512_set1_epi64(static_cast<long long>(sched.v1));
  __m512i v2 = _mm512_set1_epi64(static_cast<long long>(sched.v2));
  __m512i v3 = _mm512_set1_epi64(static_cast<long long>(sched.v3));

  const std::size_t nblocks = msg_bytes / 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const __m512i m = load8_avx512(in, msg_bytes, b * 8);
    v3 = _mm512_xor_si512(v3, m);
    sip_round_avx512(v0, v1, v2, v3);
    sip_round_avx512(v0, v1, v2, v3);
    v0 = _mm512_xor_si512(v0, m);
  }

  const __m512i fin = _mm512_set1_epi64(
      static_cast<long long>(static_cast<std::uint64_t>(msg_bytes & 0xFF) << 56));
  v3 = _mm512_xor_si512(v3, fin);
  sip_round_avx512(v0, v1, v2, v3);
  sip_round_avx512(v0, v1, v2, v3);
  v0 = _mm512_xor_si512(v0, fin);

  v2 = _mm512_xor_si512(v2, _mm512_set1_epi64(0xFF));
  for (int r = 0; r < 4; ++r) sip_round_avx512(v0, v1, v2, v3);

  const __m512i d = _mm512_xor_si512(_mm512_xor_si512(v0, v1), _mm512_xor_si512(v2, v3));
  _mm512_storeu_si512(out, d);
}

__attribute__((target("avx512f"))) void sip16_avx512(const SipSchedule& sched,
                                                     const std::uint8_t* in,
                                                     std::size_t msg_bytes, std::uint64_t* out) {
  // Two interleaved 8-lane states: state A messages 0-7, state B 8-15.
  __m512i a0 = _mm512_set1_epi64(static_cast<long long>(sched.v0));
  __m512i a1 = _mm512_set1_epi64(static_cast<long long>(sched.v1));
  __m512i a2 = _mm512_set1_epi64(static_cast<long long>(sched.v2));
  __m512i a3 = _mm512_set1_epi64(static_cast<long long>(sched.v3));
  __m512i b0 = a0, b1 = a1, b2 = a2, b3 = a3;

  const std::size_t nblocks = msg_bytes / 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * 8;
    const __m512i ma = load8_avx512(in, msg_bytes, off);
    const __m512i mb = load8_avx512(in + 8 * msg_bytes, msg_bytes, off);
    a3 = _mm512_xor_si512(a3, ma);
    b3 = _mm512_xor_si512(b3, mb);
    sip_round_avx512(a0, a1, a2, a3);
    sip_round_avx512(b0, b1, b2, b3);
    sip_round_avx512(a0, a1, a2, a3);
    sip_round_avx512(b0, b1, b2, b3);
    a0 = _mm512_xor_si512(a0, ma);
    b0 = _mm512_xor_si512(b0, mb);
  }

  const __m512i fin = _mm512_set1_epi64(
      static_cast<long long>(static_cast<std::uint64_t>(msg_bytes & 0xFF) << 56));
  a3 = _mm512_xor_si512(a3, fin);
  b3 = _mm512_xor_si512(b3, fin);
  sip_round_avx512(a0, a1, a2, a3);
  sip_round_avx512(b0, b1, b2, b3);
  sip_round_avx512(a0, a1, a2, a3);
  sip_round_avx512(b0, b1, b2, b3);
  a0 = _mm512_xor_si512(a0, fin);
  b0 = _mm512_xor_si512(b0, fin);

  const __m512i ff = _mm512_set1_epi64(0xFF);
  a2 = _mm512_xor_si512(a2, ff);
  b2 = _mm512_xor_si512(b2, ff);
  for (int r = 0; r < 4; ++r) {
    sip_round_avx512(a0, a1, a2, a3);
    sip_round_avx512(b0, b1, b2, b3);
  }

  const __m512i da = _mm512_xor_si512(_mm512_xor_si512(a0, a1), _mm512_xor_si512(a2, a3));
  const __m512i db = _mm512_xor_si512(_mm512_xor_si512(b0, b1), _mm512_xor_si512(b2, b3));
  _mm512_storeu_si512(out, da);
  _mm512_storeu_si512(out + 8, db);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace detail

#endif  // FATIH_SIPHASH_SIMD

}  // namespace fatih::crypto
