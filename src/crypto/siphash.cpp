#include "crypto/siphash.hpp"

#include <cstring>

namespace fatih::crypto {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  // Simulator targets are little-endian; a big-endian port would byteswap here.
  return v;
}

}  // namespace

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) {
  SipState s{
      key.k0 ^ 0x736F6D6570736575ULL,
      key.k1 ^ 0x646F72616E646F6DULL,
      key.k0 ^ 0x6C7967656E657261ULL,
      key.k1 ^ 0x7465646279746573ULL,
  };

  const auto* in = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;

  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(in + i * 8);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::size_t rem = len & 7;
  const std::uint8_t* tail = in + full_blocks * 8;
  for (std::size_t i = 0; i < rem; ++i) {
    last |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xFF;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) {
  return siphash24(key, std::span<const std::byte>(static_cast<const std::byte*>(data), len));
}

}  // namespace fatih::crypto
