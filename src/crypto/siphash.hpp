// SipHash-2-4: keyed 64-bit pseudo-random function (Aumasson & Bernstein),
// implemented from scratch.
//
// The detection protocols fingerprint every forwarded packet with a keyed
// one-way function (dissertation §2.1.5 uses UHASH; any keyed PRF with the
// same interface works). SipHash gives us a compact, fast, well-studied
// keyed hash without external dependencies.
//
// Two entry points: the general `siphash24(key, data)` for variable-length
// messages, and a fixed-length fast path — `SipSchedule` caches the
// key-mixed initial state once, and `siphash24_fixed<N>` hashes an N-byte
// message with the block loop unrolled at compile time. Both produce
// bit-identical output to the general routine; the fast path is what the
// per-packet fingerprint uses.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace fatih::crypto {

/// A 128-bit SipHash key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  constexpr bool operator==(const SipKey&) const = default;
};

namespace detail {

constexpr std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void absorb(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  [[nodiscard]] std::uint64_t finalize() {
    v2 ^= 0xFF;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  // Simulator targets are little-endian; a big-endian port would byteswap here.
  return v;
}

}  // namespace detail

/// The key-dependent part of SipHash initialization, computed once and
/// reused across messages (the per-packet fingerprint path hashes millions
/// of messages under one key).
struct SipSchedule {
  std::uint64_t v0, v1, v2, v3;

  constexpr explicit SipSchedule(SipKey key)
      : v0(key.k0 ^ 0x736F6D6570736575ULL),
        v1(key.k1 ^ 0x646F72616E646F6DULL),
        v2(key.k0 ^ 0x6C7967656E657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}
};

/// SipHash-2-4 of exactly `N` bytes (N a multiple of 8) under a cached
/// schedule: the compression loop unrolls at compile time and the
/// odd-tail handling drops out entirely. Bit-identical to
/// `siphash24(key, data, N)`.
template <std::size_t N>
[[nodiscard]] inline std::uint64_t siphash24_fixed(const SipSchedule& sched, const void* data) {
  static_assert(N % 8 == 0, "fixed-path messages must be whole 8-byte blocks");
  detail::SipState s{sched.v0, sched.v1, sched.v2, sched.v3};
  const auto* in = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < N / 8; ++i) {  // unrolled: N is a constant
    s.absorb(detail::load_le64(in + i * 8));
  }
  // Final block: no tail bytes, just the message length in the top byte.
  s.absorb(static_cast<std::uint64_t>(N & 0xFF) << 56);
  return s.finalize();
}

/// Computes SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(SipKey key, std::span<const std::byte> data);

/// Convenience overload for raw buffers.
[[nodiscard]] std::uint64_t siphash24(SipKey key, const void* data, std::size_t len);

}  // namespace fatih::crypto
