// SipHash-2-4: keyed 64-bit pseudo-random function (Aumasson & Bernstein),
// implemented from scratch.
//
// The detection protocols fingerprint every forwarded packet with a keyed
// one-way function (dissertation §2.1.5 uses UHASH; any keyed PRF with the
// same interface works). SipHash gives us a compact, fast, well-studied
// keyed hash without external dependencies.
//
// Three entry points: the general `siphash24(key, data)` for
// variable-length messages; a fixed-length fast path — `SipSchedule`
// caches the key-mixed initial state once, and `siphash24_fixed<N>` hashes
// an N-byte message with the block loop unrolled at compile time; and a
// batch path — `siphash24_fixed_batch<N>` hashes `count` contiguous
// N-byte messages at once, running 4 (SSE2) or 8 (AVX2) independent
// SipHash lanes per instruction where the CPU allows it. The dispatch
// level is detected once at startup and can be capped at runtime
// (set_simd_level_cap) to force the narrower paths. Every path — scalar,
// SSE2, AVX2 — produces bit-identical digests: the kernels perform the
// same 64-bit adds, rotates and xors on independent lanes, so there is no
// reassociation, no rounding, and no lane interaction to diverge.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

/// Compile-time gate for the SIMD batch kernels: configure the build with
/// -DFATIH_SIMD=OFF (CMake) to compile them out and force the scalar path
/// everywhere — the sanitizer CI job builds this way.
#ifndef FATIH_SIMD
#define FATIH_SIMD 1
#endif
#if FATIH_SIMD && defined(__x86_64__) && defined(__GNUC__)
#define FATIH_SIPHASH_SIMD 1
#else
#define FATIH_SIPHASH_SIMD 0
#endif

namespace fatih::crypto {

/// A 128-bit SipHash key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  constexpr bool operator==(const SipKey&) const = default;
};

namespace detail {

constexpr std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void absorb(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  [[nodiscard]] std::uint64_t finalize() {
    v2 ^= 0xFF;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  // Simulator targets are little-endian; a big-endian port would byteswap here.
  return v;
}

}  // namespace detail

/// The key-dependent part of SipHash initialization, computed once and
/// reused across messages (the per-packet fingerprint path hashes millions
/// of messages under one key).
struct SipSchedule {
  std::uint64_t v0, v1, v2, v3;

  constexpr explicit SipSchedule(SipKey key)
      : v0(key.k0 ^ 0x736F6D6570736575ULL),
        v1(key.k1 ^ 0x646F72616E646F6DULL),
        v2(key.k0 ^ 0x6C7967656E657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}
};

/// SipHash-2-4 of exactly `N` bytes (N a multiple of 8) under a cached
/// schedule: the compression loop unrolls at compile time and the
/// odd-tail handling drops out entirely. Bit-identical to
/// `siphash24(key, data, N)`.
template <std::size_t N>
[[nodiscard]] inline std::uint64_t siphash24_fixed(const SipSchedule& sched, const void* data) {
  static_assert(N % 8 == 0, "fixed-path messages must be whole 8-byte blocks");
  detail::SipState s{sched.v0, sched.v1, sched.v2, sched.v3};
  const auto* in = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < N / 8; ++i) {  // unrolled: N is a constant
    s.absorb(detail::load_le64(in + i * 8));
  }
  // Final block: no tail bytes, just the message length in the top byte.
  s.absorb(static_cast<std::uint64_t>(N & 0xFF) << 56);
  return s.finalize();
}

/// Computes SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(SipKey key, std::span<const std::byte> data);

/// Convenience overload for raw buffers.
[[nodiscard]] std::uint64_t siphash24(SipKey key, const void* data, std::size_t len);

/// Vector width the batch path dispatches to. Ordered: every level
/// includes the capabilities of the narrower ones, and the dispatcher
/// falls through level by level (AVX2 groups of 8, then SSE2 groups of 4,
/// then scalar for the tail).
enum class SimdLevel : int {
  kScalar = 0,  ///< plain 64-bit integer code (always available)
  kSse2 = 1,    ///< 4 lanes: two 2x64-bit states interleaved
  kAvx2 = 2,    ///< 8 lanes: two 4x64-bit states interleaved
  kAvx512 = 3,  ///< 8/16 lanes: single-uop rotates (vprolq) carry the round
};

/// Widest batch the current dispatch level fills in one kernel call
/// (16 / 8 / 4 / 1). Callers that accumulate packets into lane-width
/// batches size their buffers with this.
[[nodiscard]] std::size_t simd_batch_width();

/// Effective dispatch level: min(detected CPU capability, configured
/// cap). Detection runs once; builds with FATIH_SIMD off (or non-x86-64
/// targets) always report kScalar.
[[nodiscard]] SimdLevel simd_level();

/// Caps the dispatch level and returns the previous cap. Tests use this to
/// run the same inputs through scalar, SSE2 and AVX2 and diff the digests;
/// it can only narrow what the CPU supports, never exceed it.
SimdLevel set_simd_level_cap(SimdLevel cap);

#if FATIH_SIPHASH_SIMD
namespace detail {
/// Batch kernels (siphash.cpp — the only translation unit with vector
/// intrinsics, enforced by fatih-lint simd-containment). Each hashes
/// `lane count` contiguous msg_bytes-sized messages starting at `in`
/// (message i at in + i * msg_bytes); msg_bytes must be a multiple of 8.
void sip4_sse2(const SipSchedule& sched, const std::uint8_t* in, std::size_t msg_bytes,
               std::uint64_t* out);
void sip8_avx2(const SipSchedule& sched, const std::uint8_t* in, std::size_t msg_bytes,
               std::uint64_t* out);
void sip8_avx512(const SipSchedule& sched, const std::uint8_t* in, std::size_t msg_bytes,
                 std::uint64_t* out);
void sip16_avx512(const SipSchedule& sched, const std::uint8_t* in, std::size_t msg_bytes,
                  std::uint64_t* out);
}  // namespace detail
#endif

/// SipHash-2-4 of `count` contiguous N-byte messages (message i at
/// data + i*N), digests written to out[0..count). Bit-identical to
/// calling siphash24_fixed<N> per message on every dispatch path; the
/// scalar tail (count % lane width) always exercises the scalar code, so
/// no batch size hides a divergent kernel.
template <std::size_t N>
inline void siphash24_fixed_batch(const SipSchedule& sched, const void* data, std::size_t count,
                                  std::uint64_t* out) {
  static_assert(N % 8 == 0, "fixed-path messages must be whole 8-byte blocks");
  const auto* in = static_cast<const std::uint8_t*>(data);
  std::size_t i = 0;
#if FATIH_SIPHASH_SIMD
  const SimdLevel level = simd_level();
  if (level == SimdLevel::kAvx512) {
    for (; i + 16 <= count; i += 16) detail::sip16_avx512(sched, in + i * N, N, out + i);
    for (; i + 8 <= count; i += 8) detail::sip8_avx512(sched, in + i * N, N, out + i);
  } else if (level == SimdLevel::kAvx2) {
    for (; i + 8 <= count; i += 8) detail::sip8_avx2(sched, in + i * N, N, out + i);
  }
  if (level >= SimdLevel::kSse2) {
    for (; i + 4 <= count; i += 4) detail::sip4_sse2(sched, in + i * N, N, out + i);
  }
#endif
  for (; i < count; ++i) out[i] = siphash24_fixed<N>(sched, in + i * N);
}

}  // namespace fatih::crypto
