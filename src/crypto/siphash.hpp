// SipHash-2-4: keyed 64-bit pseudo-random function (Aumasson & Bernstein),
// implemented from scratch.
//
// The detection protocols fingerprint every forwarded packet with a keyed
// one-way function (dissertation §2.1.5 uses UHASH; any keyed PRF with the
// same interface works). SipHash gives us a compact, fast, well-studied
// keyed hash without external dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace fatih::crypto {

/// A 128-bit SipHash key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  constexpr bool operator==(const SipKey&) const = default;
};

/// Computes SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(SipKey key, std::span<const std::byte> data);

/// Convenience overload for raw buffers.
[[nodiscard]] std::uint64_t siphash24(SipKey key, const void* data, std::size_t len);

}  // namespace fatih::crypto
