// One-way hash chains (Lamport), as referenced in dissertation §2.1.5 as a
// cryptographic tool (e.g. TESLA-style delayed key disclosure).
//
// A chain is built backwards from a random tail: h_n = seed,
// h_{i} = H(h_{i+1}). The anchor h_0 is published; revealing h_i later
// proves knowledge of the chain up to position i, because any verifier can
// iterate H and compare with the anchor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/siphash.hpp"

namespace fatih::crypto {

/// Pre-computed one-way hash chain of fixed length.
class HashChain {
 public:
  /// Builds a chain of `length + 1` values (positions 0..length) from a
  /// secret seed. Position 0 is the public anchor.
  HashChain(std::uint64_t seed, std::size_t length);

  [[nodiscard]] std::size_t length() const { return values_.size() - 1; }

  /// The public anchor h_0.
  [[nodiscard]] std::uint64_t anchor() const { return values_.front(); }

  /// Reveals the value at `position` (1-based release order; position 0 is
  /// the anchor itself). Precondition: position <= length().
  [[nodiscard]] std::uint64_t value_at(std::size_t position) const { return values_.at(position); }

  /// One application of the chain's one-way function.
  [[nodiscard]] static std::uint64_t step(std::uint64_t value);

  /// Verifies that `value` is the chain element at `position` for a chain
  /// anchored at `anchor`: iterates `step` `position` times.
  [[nodiscard]] static bool verify(std::uint64_t anchor, std::uint64_t value,
                                   std::size_t position);

 private:
  std::vector<std::uint64_t> values_;  // values_[i] = h_i
};

}  // namespace fatih::crypto
