// SecTrace: secure traceroute (dissertation §3.6; Padmanabhan & Simon).
//
// The source validates its traffic toward a destination hop by hop: in
// each round it and ONE intermediate router summarize the monitored flow
// (conservation of content over sampled/aggregate traffic); the
// intermediate ships its signed summary back; on a match the source
// advances to the next router, on a mismatch (or a missing summary) it
// suspects the link between the current target and its predecessor.
//
// Weak-complete, precision 2 as specified — but the dissertation shows
// the precision-2 attribution is UNSOUND (Fig. 3.7): an adaptive attacker
// upstream of the already-validated prefix can start misbehaving after
// its own validation round passed, making the source blame a downstream
// pair of correct routers. The adversarial test reproduces that framing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/messages.hpp"
#include "detection/summary_gen.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"

namespace fatih::detection {

inline constexpr std::uint16_t kKindSecTraceSummary = 0x2121;

struct SecTraceConfig {
  RoundClock clock;  ///< one probing round per interval
  util::Duration collect_settle = util::Duration::millis(150);
  util::Duration reply_timeout = util::Duration::millis(300);
  std::uint32_t flow_id = 0;
  /// Loss tolerance before a hop is declared inconsistent.
  std::uint64_t max_lost_packets = 2;
};

/// One SecTrace session: source = path.front(), destination service =
/// traffic to path.back()'s direction, advancing one hop per round.
class SecTraceDetector {
 public:
  SecTraceDetector(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                   routing::Path path, SecTraceConfig config);
  SecTraceDetector(const SecTraceDetector&) = delete;
  SecTraceDetector& operator=(const SecTraceDetector&) = delete;

  void start();

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  /// Index of the hop currently being validated (1-based along the path).
  [[nodiscard]] std::size_t current_target() const { return target_; }
  /// True once the whole path validated cleanly at least once.
  [[nodiscard]] bool completed_pass() const { return completed_; }

 private:
  void run_round(std::int64_t round);
  void evaluate(std::int64_t round, std::size_t target);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  routing::Path path_;
  SecTraceConfig config_;
  // One summary generator per path router; the source's records are the
  // reference, each intermediate's are the probe.
  std::vector<std::unique_ptr<SummaryGenerator>> generators_;
  std::size_t target_ = 1;
  bool completed_ = false;
  // Replies received at the source: (round) -> summary.
  std::map<std::int64_t, SegmentSummary> replies_;
  std::vector<Suspicion> suspicions_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
