// Byzantine control-plane verification (the hardening layer of PR 6).
//
// Every control message a detection engine consumes passes through a
// ControlGuard before any protocol state changes: MAC verification against
// the key registry, strict canonical decode (messages.hpp from_bytes), a
// signer/reporter identity match, and a monotone round watermark that
// rejects stale replays and far-future rounds. Rejected messages are
// dropped, counted (byzantine.* metrics), traced (kByzantine category) and
// — where the rejection is attributable — converted into sender suspicion
// by the calling engine. Rounds never stall on a rejection: evaluation
// proceeds on whatever verified summaries arrived.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/mac.hpp"
#include "detection/messages.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"

namespace fatih::detection {

/// Why a control message was rejected (kOk = accepted).
enum class ControlVerdict : std::uint8_t {
  kOk = 0,
  kBadMac,          ///< envelope MAC does not verify (tampered or forged)
  kSignerMismatch,  ///< envelope signer != claimed reporter/accuser
  kMalformed,       ///< payload fails the strict canonical decode
  kStale,           ///< round at/below the receiver's closed watermark
  kFuture,          ///< round beyond the next open round
};
[[nodiscard]] const char* to_string(ControlVerdict v);

/// Verification counters, mirrored into the metrics registry as
/// byzantine.<prefix>.*.
struct ByzantineStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_bad_mac = 0;
  std::uint64_t rejected_signer_mismatch = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_future = 0;

  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_bad_mac + rejected_signer_mismatch + rejected_malformed + rejected_stale +
           rejected_future;
  }
};

/// The shared verification front-end. One guard per engine; the engine
/// calls a check_* primitive, then accept() or reject() so every drop is
/// counted and traced uniformly.
class ControlGuard {
 public:
  /// `source` tags the trace events; `metric_prefix` scopes the metric
  /// names ("pi2" -> "byzantine.pi2.rejected.bad-mac", ...).
  ControlGuard(sim::Network& net, const crypto::KeyRegistry& keys, obs::TraceSource source,
               std::string metric_prefix);

  /// Decode-and-verify primitives. On any failure the optional stays empty
  /// and the verdict names the first check that failed; the caller then
  /// reject()s with whatever hop attribution it has. The envelope payload
  /// is authoritative — callers must use the decoded value, never a
  /// convenience copy that rode alongside it.
  [[nodiscard]] ControlVerdict check_summary(const crypto::SignedEnvelope& env,
                                             std::optional<SegmentSummary>& out) const;
  [[nodiscard]] ControlVerdict check_report(const crypto::SignedEnvelope& env,
                                            std::optional<ChiReport>& out) const;
  [[nodiscard]] ControlVerdict check_accusation(const crypto::SignedEnvelope& env,
                                                std::optional<Accusation>& out) const;

  /// Anti-replay admission: accepts rounds in (closed_round, current+1].
  /// On kStale, *margin (when non-null) is how far below the watermark the
  /// round fell — margin >= kSuspectMargin cannot be a late retransmit of
  /// the retry schedule and warrants suspicion; smaller margins only count.
  [[nodiscard]] ControlVerdict admit_round(std::int64_t round, std::int64_t closed_round,
                                           std::int64_t current_round,
                                           std::int64_t* margin = nullptr) const;
  static constexpr std::int64_t kSuspectMargin = 2;

  /// Counts an accepted message.
  void accept();
  /// Counts, traces and attributes a rejection: `at` observed it, `from`
  /// handed over the bad message (kInvalidNode when unattributable).
  void reject(util::NodeId at, util::NodeId from, std::int64_t round, ControlVerdict v,
              const char* note);

  [[nodiscard]] const ByzantineStats& stats() const { return stats_; }

 private:
  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  obs::TraceSource source_;
  std::string metric_prefix_;
  ByzantineStats stats_;
};

}  // namespace fatih::detection
