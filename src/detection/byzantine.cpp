#include "detection/byzantine.hpp"

#include "obs/metrics.hpp"

namespace fatih::detection {

const char* to_string(ControlVerdict v) {
  switch (v) {
    case ControlVerdict::kOk: return "ok";
    case ControlVerdict::kBadMac: return "bad-mac";
    case ControlVerdict::kSignerMismatch: return "signer-mismatch";
    case ControlVerdict::kMalformed: return "malformed";
    case ControlVerdict::kStale: return "stale-replay";
    case ControlVerdict::kFuture: return "future-round";
  }
  return "?";
}

ControlGuard::ControlGuard(sim::Network& net, const crypto::KeyRegistry& keys,
                           obs::TraceSource source, std::string metric_prefix)
    : net_(net), keys_(keys), source_(source), metric_prefix_(std::move(metric_prefix)) {}

ControlVerdict ControlGuard::check_summary(const crypto::SignedEnvelope& env,
                                           std::optional<SegmentSummary>& out) const {
  if (!crypto::verify(keys_, env)) return ControlVerdict::kBadMac;
  auto decoded = SegmentSummary::from_bytes(env.payload);
  if (!decoded.has_value()) return ControlVerdict::kMalformed;
  if (decoded->reporter != env.signer) return ControlVerdict::kSignerMismatch;
  out = std::move(*decoded);
  return ControlVerdict::kOk;
}

ControlVerdict ControlGuard::check_report(const crypto::SignedEnvelope& env,
                                          std::optional<ChiReport>& out) const {
  if (!crypto::verify(keys_, env)) return ControlVerdict::kBadMac;
  auto decoded = ChiReport::from_bytes(env.payload);
  if (!decoded.has_value()) return ControlVerdict::kMalformed;
  if (decoded->reporter != env.signer) return ControlVerdict::kSignerMismatch;
  out = std::move(*decoded);
  return ControlVerdict::kOk;
}

ControlVerdict ControlGuard::check_accusation(const crypto::SignedEnvelope& env,
                                              std::optional<Accusation>& out) const {
  if (!crypto::verify(keys_, env)) return ControlVerdict::kBadMac;
  auto decoded = Accusation::from_bytes(env.payload);
  if (!decoded.has_value()) return ControlVerdict::kMalformed;
  if (decoded->accuser != env.signer) return ControlVerdict::kSignerMismatch;
  out = std::move(*decoded);
  return ControlVerdict::kOk;
}

ControlVerdict ControlGuard::admit_round(std::int64_t round, std::int64_t closed_round,
                                         std::int64_t current_round,
                                         std::int64_t* margin) const {
  if (round <= closed_round) {
    if (margin != nullptr) *margin = closed_round - round;
    return ControlVerdict::kStale;
  }
  if (round > current_round + 1) return ControlVerdict::kFuture;
  return ControlVerdict::kOk;
}

void ControlGuard::accept() {
  ++stats_.accepted;
  FATIH_METRIC_REG(net_.sim().metrics(),
                   counter("byzantine." + metric_prefix_ + ".accepted").inc());
}

void ControlGuard::reject([[maybe_unused]] util::NodeId at,
                          [[maybe_unused]] util::NodeId from,
                          [[maybe_unused]] std::int64_t round, ControlVerdict v,
                          [[maybe_unused]] const char* note) {
  switch (v) {
    case ControlVerdict::kOk: return;  // not a rejection
    case ControlVerdict::kBadMac: ++stats_.rejected_bad_mac; break;
    case ControlVerdict::kSignerMismatch: ++stats_.rejected_signer_mismatch; break;
    case ControlVerdict::kMalformed: ++stats_.rejected_malformed; break;
    case ControlVerdict::kStale: ++stats_.rejected_stale; break;
    case ControlVerdict::kFuture: ++stats_.rejected_future; break;
  }
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   byzantine(net_.sim().now(), source_, obs::TraceCode::kControlRejected, at,
                             from, round, static_cast<std::uint64_t>(v),
                             note != nullptr ? note : to_string(v)));
  FATIH_METRIC_REG(net_.sim().metrics(),
                   counter("byzantine." + metric_prefix_ + ".rejected." + to_string(v)).inc());
}

}  // namespace fatih::detection
