#include "detection/perlman.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace fatih::detection {

namespace {

std::uint64_t tag_of(const routing::Path& path, std::uint32_t flow) {
  constexpr crypto::SipKey kTagKey{0x5045524C4D414E21ULL, 0x5041544854414721ULL};
  std::vector<std::uint32_t> material(path.begin(), path.end());
  material.push_back(flow);
  return crypto::siphash24(kTagKey, material.data(), material.size() * sizeof(std::uint32_t));
}

constexpr std::uint32_t kAckBytes = 24;

}  // namespace

PerlmanDetector::PerlmanDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                                 routing::Path path, PerlmanConfig config)
    : net_(net),
      keys_(keys),
      path_(std::move(path)),
      config_(config),
      fp_key_(keys.fingerprint_key(path_.front(), path_.back())),
      path_tag_(tag_of(path_, config.flow_id)) {
  const std::size_t last = path_.size() - 1;

  // Every router past the source acks the data packet to the source when
  // it handles it (forwarding, or consuming at the sink).
  for (std::size_t i = 1; i < path_.size(); ++i) {
    const std::size_t pos = i;
    auto& router = net_.router(path_[i]);
    router.add_receive_tap([this, pos](const sim::Packet& p, util::NodeId prev, util::SimTime) {
      if (p.is_control() || p.hdr.flow_id != config_.flow_id) return;
      if (prev != path_[pos - 1]) return;
      on_forward(pos, p);
    });
  }

  // The source arms a per-packet timer at forward time and collects acks.
  auto& source = net_.router(path_[0]);
  source.add_forward_tap([this](const sim::Packet& p, util::NodeId, std::size_t out_iface,
                                util::SimTime) {
    if (p.is_control() || p.hdr.flow_id != config_.flow_id) return;
    if (net_.router(path_[0]).interface(out_iface).peer() != path_[1]) return;
    const auto fp = validation::packet_fingerprint(fp_key_, p);
    const auto timeout =
        config_.per_hop_bound * static_cast<std::int64_t>(2 * (path_.size() - 1) + 1);
    timers_[fp] = net_.sim().schedule_in(timeout, [this, fp] { on_source_timeout(fp); });
  });
  source.add_control_sink([this, last](const sim::Packet& p, util::NodeId, util::SimTime) {
    if (p.control == nullptr || p.control->kind() != kKindPerlmanAck) return;
    const auto& ack = static_cast<const PerlmanAckPayload&>(*p.control);
    if (ack.path_tag != path_tag_) return;
    acked_[ack.fp].insert(ack.from_position);
    if (ack.from_position == last) {
      // Delivered: disarm.
      if (auto it = timers_.find(ack.fp); it != timers_.end()) {
        net_.sim().cancel(it->second);
        timers_.erase(it);
      }
      acked_.erase(ack.fp);
    }
  });
}

void PerlmanDetector::on_forward(std::size_t position, const sim::Packet& p) {
  ++acks_sent_;
  auto payload = std::make_shared<PerlmanAckPayload>();
  payload->path_tag = path_tag_;
  payload->fp = validation::packet_fingerprint(fp_key_, p);
  payload->from_position = static_cast<std::uint32_t>(position);

  sim::PacketHeader hdr;
  hdr.src = path_[position];
  hdr.dst = path_[0];
  hdr.proto = sim::Protocol::kControl;
  sim::Packet ack = net_.make_packet(hdr, kAckBytes);
  ack.control = std::move(payload);
  std::vector<util::NodeId> hops;
  for (std::size_t i = position + 1; i-- > 0;) hops.push_back(path_[i]);
  ack.source_route = std::make_shared<const std::vector<util::NodeId>>(std::move(hops));
  net_.router(path_[position]).originate(ack);
}

void PerlmanDetector::on_source_timeout(validation::Fingerprint fp) {
  timers_.erase(fp);
  // Deepest contiguous acked prefix; blame the next link. This is the
  // very rule the dissertation shows is unsound against colluders.
  std::size_t deepest = 0;
  if (auto it = acked_.find(fp); it != acked_.end()) {
    while (it->second.contains(deepest + 1)) ++deepest;
    acked_.erase(it);
  }
  const std::size_t hi = std::min(deepest + 1, path_.size() - 1);
  const auto key = std::make_pair(deepest, net_.sim().now().nanos() / 1'000'000'000);
  if (!suspected_.insert(key).second) return;

  Suspicion s;
  s.reporter = path_[0];
  s.segment = routing::PathSegment(std::vector<util::NodeId>(
      path_.begin() + static_cast<std::ptrdiff_t>(deepest),
      path_.begin() + static_cast<std::ptrdiff_t>(hi) + 1));
  s.interval = {net_.sim().now() - config_.per_hop_bound * 16, net_.sim().now()};
  s.cause = "perlman-ack-timeout";
  util::log(util::LogLevel::kInfo, "perlman", "%s", s.to_string().c_str());
  suspicions_.push_back(s);
}

// ---------------------------------------------------- RobustMultipathSender

RobustMultipathSender::RobustMultipathSender(sim::Network& net, const routing::Topology& topo,
                                             util::NodeId src, util::NodeId dst, std::size_t f)
    : net_(net), src_(src), dst_(dst) {
  paths_ = routing::disjoint_paths(topo, src, dst, f + 1);
  if (paths_.size() < f + 1) {
    throw std::runtime_error("insufficient path diversity for TotalFault(f)");
  }
  for (const auto& p : paths_) {
    routes_.push_back(std::make_shared<const std::vector<util::NodeId>>(p));
  }
}

void RobustMultipathSender::send(std::uint32_t flow_id, std::uint32_t seq,
                                 std::uint32_t payload_bytes) {
  sim::PacketHeader hdr;
  hdr.src = src_;
  hdr.dst = dst_;
  hdr.flow_id = flow_id;
  hdr.seq = seq;
  hdr.proto = sim::Protocol::kUdp;
  // All copies share one payload identity so receivers can deduplicate by
  // fingerprint.
  sim::Packet prototype = net_.make_packet(hdr, payload_bytes);
  for (const auto& route : routes_) {
    sim::Packet copy = prototype;
    copy.source_route = route;
    net_.router(src_).originate(copy);
  }
}

}  // namespace fatih::detection
