// Control-plane messages of the detection protocols.
//
// Summaries travel through the simulated network as signed control
// payloads, so protocol-faulty routers can drop or withhold them — the
// behaviours the distributed-detection layer must tolerate (dissertation
// §2.2.1 "protocol faulty").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/mac.hpp"
#include "routing/segments.hpp"
#include "sim/packet.hpp"
#include "util/time.hpp"
#include "validation/summary.hpp"

namespace fatih::detection {

/// Control payload kinds in the 0x20xx range (detection subsystem).
inline constexpr std::uint16_t kKindSegmentSummary = 0x2001;  ///< Pi(k+2) end-to-end exchange
inline constexpr std::uint16_t kKindSummaryFlood = 0x2002;    ///< Pi2 consensus dissemination
inline constexpr std::uint16_t kKindChiReport = 0x2003;       ///< chi neighbor reports
inline constexpr std::uint16_t kKindAccusation = 0x2004;      ///< evidence-layer accusations
inline constexpr std::uint16_t kKindControlAck = 0x20A0;      ///< reliable-transport acks

/// Decoder caps: every length field read off the wire is validated against
/// the bytes actually present before any allocation, so a malformed count
/// can never trigger an unbounded reserve. These are additional absolute
/// ceilings far above anything a legitimate message carries.
inline constexpr std::uint64_t kMaxSummaryElements = 1u << 20;
inline constexpr std::uint64_t kMaxChiRecords = 1u << 20;
inline constexpr std::uint32_t kMaxSegmentNodes = 1u << 10;

/// info(r, pi, tau): everything router r tells others about the traffic it
/// handled on segment `segment` during round `round`.
struct SegmentSummary {
  util::NodeId reporter = util::kInvalidNode;
  routing::PathSegment segment;
  std::int64_t round = 0;
  validation::CounterSummary counters;
  /// Content fingerprints in forwarding order (doubles as the
  /// conservation-of-order summary; sorted on demand for set operations).
  /// Empty when the summary ships in reconciliation form.
  std::vector<validation::Fingerprint> content;
  /// Appendix-A compressed form: characteristic-polynomial evaluations of
  /// the content set at the shared points, shipped instead of `content`
  /// (O(d) field elements instead of O(n) fingerprints).
  std::vector<std::uint64_t> recon_evals;
  /// Bloom-digest form (§2.4.1): the filter's words, shipped instead of
  /// `content`. Cheap but approximate — the symmetric-difference size is
  /// ESTIMATED from the XOR population.
  std::vector<std::uint64_t> bloom_words;
  std::uint32_t bloom_hashes = 0;

  [[nodiscard]] bool reconciled_form() const { return !recon_evals.empty(); }
  [[nodiscard]] bool bloom_form() const { return !bloom_words.empty(); }

  /// Canonical byte serialization (signed and MAC-verified end to end).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  /// Wire size estimate for the simulated control packet.
  [[nodiscard]] std::uint32_t wire_bytes() const;
  /// Strict inverse of to_bytes(): nullopt on truncation, trailing bytes,
  /// or any length field inconsistent with the bytes present. Never throws
  /// and never allocates more than the input size admits.
  [[nodiscard]] static std::optional<SegmentSummary> from_bytes(
      std::span<const std::byte> in);
};

/// A signed SegmentSummary in flight (both the Pi(k+2) unicast exchange
/// and the Pi2 flood use this payload; `kind_tag` distinguishes them).
struct SegmentSummaryPayload final : sim::ControlPayload {
  SegmentSummary summary;
  crypto::SignedEnvelope envelope;
  std::uint16_t kind_tag = kKindSegmentSummary;
  [[nodiscard]] std::uint16_t kind() const override { return kind_tag; }
};

/// One timestamped record of the chi protocol's ingress stream, §6.2.1.
struct ChiRecord {
  validation::Fingerprint fp = 0;
  std::uint32_t size_bytes = 0;
  std::uint32_t flow_id = 0;
  /// Control-plane packets bypass RED/drop-tail admission (see
  /// sim/queue.cpp); the replay must model them the same way.
  bool control = false;
  util::SimTime ts;  ///< predicted queue-entry time
};

/// Tinfo(rs, Qin, <rs, r, rd>, tau): neighbor rs reports what it fed into
/// router r's output queue toward rd during `round`.
struct ChiReport {
  util::NodeId reporter = util::kInvalidNode;
  util::NodeId queue_owner = util::kInvalidNode;  ///< r
  util::NodeId queue_peer = util::kInvalidNode;   ///< rd
  std::int64_t round = 0;
  /// Reports are fragmented into MTU-sized parts (dissertation §7.4.4:
  /// oversized control messages must not become jumbo frames); part is
  /// 0-based, parts is the total count. The validator requires all parts.
  std::uint32_t part = 0;
  std::uint32_t parts = 1;
  std::vector<ChiRecord> records;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  [[nodiscard]] std::uint32_t wire_bytes() const;
  /// Strict inverse of to_bytes(); same contract as SegmentSummary's.
  [[nodiscard]] static std::optional<ChiReport> from_bytes(std::span<const std::byte> in);
};

struct ChiReportPayload final : sim::ControlPayload {
  ChiReport report;
  crypto::SignedEnvelope envelope;
  [[nodiscard]] std::uint16_t kind() const override { return kKindChiReport; }
};

/// A signed statement that some router within `accused` misbehaved during
/// `round` — the input of the evidence-based conviction layer. Evidence is
/// either empty (a witness vote, convicting only by quorum) or a pair of
/// conflicting signed envelopes proving equivocation by their signer.
struct Accusation {
  util::NodeId accuser = util::kInvalidNode;
  /// Which detector raised the underlying suspicion (obs::TraceSource
  /// value, carried as a raw byte to keep the wire format layer-free).
  std::uint8_t detector = 0;
  routing::PathSegment accused{};
  std::int64_t round = 0;
  std::string cause{};  ///< suspicion cause tag; capped at kMaxCauseBytes
  std::vector<crypto::SignedEnvelope> evidence{};

  static constexpr std::uint32_t kMaxCauseBytes = 64;
  static constexpr std::uint32_t kMaxEvidence = 4;
  static constexpr std::uint32_t kMaxEvidencePayload = 1u << 16;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  [[nodiscard]] std::uint32_t wire_bytes() const;
  /// Strict inverse of to_bytes(); same contract as SegmentSummary's.
  [[nodiscard]] static std::optional<Accusation> from_bytes(std::span<const std::byte> in);
};

struct AccusationPayload final : sim::ControlPayload {
  Accusation accusation;
  crypto::SignedEnvelope envelope;  ///< signed by the accuser over to_bytes()
  [[nodiscard]] std::uint16_t kind() const override { return kKindAccusation; }
};

}  // namespace fatih::detection
