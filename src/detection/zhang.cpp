#include "detection/zhang.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.hpp"

namespace fatih::detection {

namespace {
constexpr double kMeanPacketBytes = 1000.0;
}

ZhangDetector::ZhangDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                             const PathCache& paths, util::NodeId queue_owner,
                             util::NodeId queue_peer, ZhangConfig config)
    : net_(net),
      paths_(paths),
      owner_(queue_owner),
      peer_(queue_peer),
      config_(config),
      fp_key_(keys.fingerprint_key(queue_owner, queue_peer)) {
  auto& owner_node = net_.router(owner_);
  auto* iface = owner_node.interface_to(peer_);
  assert(iface != nullptr);
  const double tau = config_.clock.tau.to_seconds();
  service_per_round_ = iface->link().bandwidth_bps / 8.0 / kMeanPacketBytes * tau;
  queue_packets_ = static_cast<double>(iface->queue().byte_limit()) / kMeanPacketBytes;

  for (std::size_t i = 0; i < owner_node.interface_count(); ++i) {
    const util::NodeId nbr = owner_node.interface(i).peer();
    if (nbr == peer_) continue;
    auto* nbr_iface = net_.node(nbr).interface_to(owner_);
    if (nbr_iface == nullptr) continue;
    const sim::LinkParams nbr_link = nbr_iface->link();
    const auto proc = owner_node.base_processing_delay();
    nbr_iface->add_transmit_tap([this, nbr_link, proc](const sim::Packet& p, util::SimTime now) {
      if (p.hdr.dst == owner_) return;
      if (paths_.next_hop_after(p.hdr.src, p.hdr.dst, owner_) != peer_) return;
      const auto ts = now + nbr_link.tx_time(p.size_bytes) + nbr_link.delay + proc;
      entries_[config_.clock.round_of(ts)].push_back(validation::packet_fingerprint(fp_key_, p));
    });
  }
  net_.node(peer_).add_receive_tap(
      [this](const sim::Packet& p, util::NodeId prev, util::SimTime) {
        if (prev != owner_) return;
        exits_.insert(validation::packet_fingerprint(fp_key_, p));
      });
}

void ZhangDetector::start() {
  const auto first = config_.clock.interval_of(0).end + config_.settle;
  net_.sim().schedule_at(first, [this] { validate(0); });
}

double ZhangDetector::predict_loss(double arrivals_per_round) const {
  // M/M/1/K blocking probability for the fitted mean rate: the fraction
  // of arrivals a Poisson-fed queue of this capacity would reject.
  const double rho = arrivals_per_round / service_per_round_;
  const double k = std::max(queue_packets_, 1.0);
  double block;
  if (std::abs(rho - 1.0) < 1e-9) {
    block = 1.0 / (k + 1.0);
  } else {
    block = (1.0 - rho) * std::pow(rho, k) / (1.0 - std::pow(rho, k + 1.0));
  }
  return std::max(0.0, arrivals_per_round * block);
}

void ZhangDetector::validate(std::int64_t round) {
  RoundStats stats;
  stats.round = round;
  if (auto it = entries_.find(round); it != entries_.end()) {
    stats.entries = it->second.size();
    for (validation::Fingerprint fp : it->second) {
      auto eit = exits_.find(fp);
      if (eit != exits_.end()) {
        exits_.erase(eit);
      } else {
        ++stats.lost;
      }
    }
    entries_.erase(it);
  }

  if (round < config_.learning_rounds) {
    rate_accumulator_ += static_cast<double>(stats.entries);
    if (++rate_samples_ == config_.learning_rounds) {
      fitted_rate_ = rate_accumulator_ / static_cast<double>(rate_samples_);
      util::log(util::LogLevel::kInfo, "zhang", "fitted Poisson rate %.1f pkts/round",
                fitted_rate_);
    }
  } else {
    // The ZHANG threshold: losses predicted for a Poisson arrival process
    // at the fitted mean rate, plus z standard deviations (Poisson:
    // variance equals the mean).
    stats.predicted_loss = predict_loss(fitted_rate_);
    const double bound =
        stats.predicted_loss + config_.z_threshold * std::sqrt(stats.predicted_loss + 1.0);
    if (static_cast<double>(stats.lost) > bound) {
      stats.alarmed = true;
      Suspicion s;
      s.reporter = peer_;
      s.segment = routing::PathSegment{owner_, peer_};
      s.interval = config_.clock.interval_of(round);
      s.cause = "zhang-poisson-threshold";
      s.confidence = 1.0;
      util::log(util::LogLevel::kInfo, "zhang", "%s", s.to_string().c_str());
      suspicions_.push_back(s);
    }
  }
  round_stats_.push_back(stats);

  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.settle;
    net_.sim().schedule_at(next, [this, round] { validate(round + 1); });
  }
}

}  // namespace fatih::detection
