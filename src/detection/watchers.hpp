// WATCHERS (dissertation §3.1; Bradley et al.): the conservation-of-flow
// baseline, including the consorting-router flaw the dissertation
// identifies and the fix it proposes.
//
// Every router keeps, per neighbor and final destination, the byte/packet
// counters of Fig. 3.1 on both the send and receive side of each link,
// plus the misrouted-packet counter. Snapshots are flooded each round;
// each router then runs the two-phase protocol:
//   1. Validation: compare my counters for my links against my neighbors'
//      claims; compare my neighbors' claims for their other links against
//      their neighbors' claims. A direct mismatch implicates my neighbor;
//      a remote mismatch (b,c) is left for b and c to settle — which is
//      exactly the flaw: if b and c consort, neither will.
//   2. Conservation of flow: transit inflow vs outflow per neighbor,
//      within a threshold.
// The fixed variant (§3.1, "This flaw can be fixed") expects a detection
// announcement for every remote mismatch; silence implicates the adjacent
// neighbor.
//
// Snapshots are gathered centrally with per-router mutator hooks standing
// in for the flooding step (a protocol-faulty router lies in its snapshot
// or stays silent); the evaluation itself runs independently per router,
// as the real protocol would.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "detection/path_cache.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"

namespace fatih::detection {

/// Counter classes of WATCHERS Fig. 3.1.
enum class WatchersClass : std::uint8_t {
  kSourced,     ///< S_{x,y}: source x, passing through y
  kTransit,     ///< T_{x,y}: transit through both x and y
  kDestined,    ///< D_{x,y}: destination y, passing through x
};

/// One router's flooded snapshot: counters for each of its links, keyed by
/// (direction, neighbor, class, destination).
struct WatchersSnapshot {
  util::NodeId router = util::kInvalidNode;
  // send[(neighbor, class, dst)] = packets x forwarded to neighbor.
  std::map<std::tuple<util::NodeId, WatchersClass, util::NodeId>, std::uint64_t> send{};
  // recv[(neighbor, class, dst)] = packets x received from neighbor.
  std::map<std::tuple<util::NodeId, WatchersClass, util::NodeId>, std::uint64_t> recv{};
  // misroutes counted against each neighbor.
  std::map<util::NodeId, std::uint64_t> misroutes{};
};

struct WatchersConfig {
  RoundClock clock;
  util::Duration settle = util::Duration::millis(400);
  std::uint64_t flow_threshold = 5;  ///< |inflow - outflow| tolerance, packets
  bool fixed = false;                ///< apply the dissertation's fix
  std::int64_t rounds = 0;
};

class WatchersEngine {
 public:
  WatchersEngine(sim::Network& net, const PathCache& paths, WatchersConfig config);

  void start();

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

  /// Lying hook: mutate router r's snapshot before it is "flooded".
  using SnapshotMutator = std::function<void(WatchersSnapshot&)>;
  void set_snapshot_mutator(util::NodeId r, SnapshotMutator m) { mutators_[r] = std::move(m); }

  /// Protocol-faulty r never announces detections (consorting silence).
  void set_silent(util::NodeId r) { silent_.insert(r); }

  /// Counter-count introspection for the §5.1.1 overhead comparison.
  [[nodiscard]] std::size_t counters_at(util::NodeId r) const;

 private:
  void evaluate(std::int64_t round);
  void suspect(util::NodeId reporter, routing::PathSegment seg, std::int64_t round,
               const char* cause);

  sim::Network& net_;
  const PathCache& paths_;
  WatchersConfig config_;
  // Counters bucketed per round of the packet's origination time, so both
  // ends of a link attribute each packet to the same measurement interval
  // (no in-flight mismatch at round boundaries).
  std::vector<std::map<std::int64_t, WatchersSnapshot>> live_;
  std::map<util::NodeId, SnapshotMutator> mutators_;
  std::set<util::NodeId> silent_;
  std::vector<Suspicion> suspicions_;
  std::set<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>> raised_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
