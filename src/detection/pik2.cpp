#include "detection/pik2.hpp"

#include <algorithm>
#include <set>

#include "detection/evidence.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "validation/bloom.hpp"
#include "validation/reconcile.hpp"

namespace fatih::detection {

namespace {
constexpr const char* kComponent = "pik2";
}

Pik2Engine::Pik2Engine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                       const std::vector<util::NodeId>& terminals, Pik2Config config)
    : net_(net),
      keys_(keys),
      paths_(paths),
      config_(config),
      guard_(net, keys, obs::TraceSource::kPik2, "pik2") {
  const auto used_paths = paths.tables().all_paths(terminals);
  const routing::SegmentIndex index(used_paths, config_.k);
  segments_ = index.all_pik2_segments();

  generators_.resize(net_.node_count());
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    if (!net_.is_router(r)) continue;
    std::vector<std::pair<const routing::PathSegment*, std::size_t>> roles;
    for (const auto& seg : segments_) {
      if (seg.front() == r) roles.emplace_back(&seg, 0);
      if (seg.back() == r) roles.emplace_back(&seg, seg.length() - 1);
    }
    if (roles.empty()) continue;
    generators_[r] = std::make_unique<SummaryGenerator>(net_, keys_, r, config_.clock, paths);
    for (auto [seg, pos] : roles) {
      generators_[r]->monitor(*seg, pos, config_.sample_keep_per_256);
    }
    // Receive peer summaries.
    net_.node(r).add_control_sink(
        [this, r](const sim::Packet& p, util::NodeId, util::SimTime) {
          if (p.control != nullptr && p.control->kind() == kKindSegmentSummary) {
            on_summary(r, static_cast<const SegmentSummaryPayload&>(*p.control));
          }
        });
  }

  if (config_.reliable.enabled) {
    channel_ =
        std::make_unique<ReliableChannel>(net_, keys_, kKindSegmentSummary, config_.reliable);
    channel_->set_key_fn([](const sim::ControlPayload& payload) {
      const auto& p = static_cast<const SegmentSummaryPayload&>(payload);
      return summary_dedup_key(p.summary.reporter, p.summary.segment, p.summary.round,
                               p.kind_tag);
    });
    channel_->set_failure_fn([this](util::NodeId from, util::NodeId /*to*/,
                                    const sim::ControlPayload& payload, util::SimTime) {
      if (stopped_) return;
      // The sender could not get its summary through within the retry
      // budget: degrade to a suspicion of the exchange segment now rather
      // than stalling until the peer's timeout fires — unless the delivery
      // failure is explained by a route change underneath the exchange, in
      // which case the round is invalidated, not accused.
      const auto& p = static_cast<const SegmentSummaryPayload&>(payload);
      if (churn_invalidated(p.summary.segment, p.summary.round)) {
        ++counters_.rounds_invalidated;
        FATIH_METRIC_REG(net_.sim().metrics(), counter("pik2.rounds_invalidated").inc());
        return;
      }
      suspect(from, p.summary.segment, p.summary.round, "exchange-undeliverable");
    });
  }
}

void Pik2Engine::start() {
  // Begin with the first round whose collection point is still ahead
  // (an engine commissioned mid-experiment skips the already-past rounds).
  std::int64_t round = 0;
  while (config_.clock.interval_of(round).end + config_.collect_settle <= net_.sim().now()) {
    ++round;
  }
  const auto first = config_.clock.interval_of(round).end + config_.collect_settle;
  const std::int64_t start_round = round;
  net_.sim().schedule_at(first, [this, start_round] { run_round(start_round); });
}

void Pik2Engine::stop() {
  stopped_ = true;
  for (auto& gen : generators_) {
    if (gen != nullptr) gen->set_enabled(false);
  }
}

std::vector<routing::PathSegment> Pik2Engine::monitored_by(util::NodeId r) const {
  std::vector<routing::PathSegment> out;
  for (const auto& seg : segments_) {
    if (seg.is_end(r)) out.push_back(seg);
  }
  return out;
}

void Pik2Engine::run_round(std::int64_t round) {
  if (stopped_) return;
  ++counters_.rounds_opened;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kPik2,
                               obs::TraceCode::kRoundOpen, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pik2.rounds_opened").inc());
  exchange(round);
  net_.sim().schedule_in(config_.exchange_timeout, [this, round] { evaluate(round); });
  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.collect_settle;
    net_.sim().schedule_at(next, [this, round] { run_round(round + 1); });
  }
}

void Pik2Engine::exchange(std::int64_t round) {
  for (const auto& seg : segments_) {
    for (const util::NodeId r : {seg.front(), seg.back()}) {
      if (generators_[r] == nullptr) continue;
      SegmentSummary summary = generators_[r]->take_summary(seg, round);
      own_[{r, seg, round}] = OwnRecord{summary.counters, summary.content};
      auto mut = mutators_.find(r);
      if (mut != mutators_.end()) {
        if (!mut->second(summary)) continue;  // protocol-faulty: withhold
      }
      if (config_.compression == SummaryCompression::kBloom) {
        // Bloom digest (§2.4.1): size the filter for the reference rate
        // seen this round, with a floor so empty rounds stay comparable.
        const std::size_t bits = std::max<std::size_t>(
            512, summary.content.size() * config_.bloom_bits_per_packet);
        validation::BloomFilter filter(bits, config_.bloom_hashes);
        for (auto fp : summary.content) filter.insert(fp);
        summary.bloom_words = filter.words();
        summary.bloom_hashes = static_cast<std::uint32_t>(config_.bloom_hashes);
        summary.content.clear();
      } else if (config_.compression == SummaryCompression::kReconcile) {
        // Appendix A: ship O(d) evaluations instead of O(n) fingerprints.
        const auto points = validation::evaluation_points(config_.reconcile_bound + 4);
        std::set<std::uint64_t> elems;
        for (auto fp : summary.content) elems.insert(validation::to_field(fp));
        const std::vector<std::uint64_t> elem_vec(elems.begin(), elems.end());
        summary.recon_evals = validation::char_poly_evaluations(elem_vec, points);
        summary.counters.packets = elem_vec.size();  // distinct-set cardinality
        summary.content.clear();
      }
      const util::NodeId peer = (r == seg.front()) ? seg.back() : seg.front();
      auto payload = std::make_shared<SegmentSummaryPayload>();
      payload->kind_tag = kKindSegmentSummary;
      payload->envelope = crypto::sign(keys_, r, summary.to_bytes());
      payload->summary = std::move(summary);
      const std::uint32_t bytes = payload->summary.wire_bytes();
      exchange_bytes_ += sim::kHeaderBytes + bytes;
      FATIH_TRACE_EMIT(net_.sim().trace(),
                       exchange(net_.sim().now(), obs::TraceSource::kPik2,
                                obs::TraceCode::kExchangeSend, r, peer, round, bytes));
      // The exchange is routed normally; the stable route between the two
      // ends IS the segment (subpaths of shortest paths), so a faulty
      // interior router sits on the exchange path and can only cause a
      // timeout — which is itself a detection (§5.2).
      if (channel_ != nullptr) {
        channel_->send(r, peer, std::move(payload), bytes, ReliableChannel::Via::kRouted);
        continue;
      }
      sim::PacketHeader hdr;
      hdr.src = r;
      hdr.dst = peer;
      hdr.proto = sim::Protocol::kControl;
      sim::Packet p = net_.make_packet(hdr, bytes);
      p.control = std::move(payload);
      net_.router(r).originate(p);
    }
  }
}

void Pik2Engine::on_summary(util::NodeId at, const SegmentSummaryPayload& payload) {
  std::optional<SegmentSummary> decoded;
  ControlVerdict verdict = guard_.check_summary(payload.envelope, decoded);
  if (verdict == ControlVerdict::kOk) {
    verdict = guard_.admit_round(decoded->round, closed_round_,
                                 config_.clock.round_of(net_.sim().now()));
  }
  if (verdict != ControlVerdict::kOk) {
    // Unicast exchange: honest interior routers forward blindly, so a bad
    // summary has no attributable hop — drop and count. An interior
    // tamperer starves the exchange instead, which surfaces as the
    // whole-segment timeout suspicion (§5.2 semantics); a stale replay is
    // inert because the round it argues about is already closed.
    guard_.reject(at, util::kInvalidNode, decoded.has_value() ? decoded->round : -1, verdict,
                  nullptr);
    return;
  }
  const auto& seg = decoded->segment;
  if (!seg.is_end(at) || !seg.is_end(decoded->reporter) || decoded->reporter == at) return;
  const std::tuple<util::NodeId, routing::PathSegment, std::int64_t> key{at, seg,
                                                                         decoded->round};
  const auto [env_it, fresh] = peer_envelope_.emplace(key, payload.envelope);
  if (!fresh) {
    if (env_it->second.payload != payload.envelope.payload) {
      // Two MAC-valid, conflicting summaries from the same end for the
      // same (segment, round): a self-incriminating equivocation proof.
      FATIH_TRACE_EMIT(net_.sim().trace(),
                       byzantine(net_.sim().now(), obs::TraceSource::kPik2,
                                 obs::TraceCode::kEquivocationProven, at, decoded->reporter,
                                 decoded->round, 0, "conflicting-summaries"));
      FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.pik2.equivocations").inc());
      if (conviction_ != nullptr && proof_filed_.insert(key).second) {
        conviction_->accuse(at, static_cast<std::uint8_t>(obs::TraceSource::kPik2),
                            routing::PathSegment{decoded->reporter}, decoded->round,
                            "equivocation", {env_it->second, payload.envelope});
      }
      suspect(at, routing::PathSegment{decoded->reporter}, decoded->round, "equivocation");
    }
    return;  // first verified summary stays authoritative
  }
  guard_.accept();
  peer_[key] = std::move(*decoded);
}

bool Pik2Engine::churn_invalidated(const routing::PathSegment& seg, std::int64_t round) const {
  const auto interval = config_.clock.interval_of(round);
  const auto now = net_.sim().now();
  // Whole-fabric test, not per-segment path stability: recorders judge
  // packets against the end-to-end path at creation time, so a reroute of
  // a flow contaminates summaries even on segments whose own endpoints
  // kept their path (the flow's source records packets "into" a segment
  // they now detour around).
  if (paths_.changed_during(interval.begin, now)) return true;
  // After a reroute the exchange segment may simply no longer carry the
  // traffic (or the exchange itself): off-path segments are parked, not
  // judged. Only applies once churn has actually produced an epoch.
  return paths_.epoch_count() > 1 &&
         !seg.within(paths_.path_at(seg.front(), seg.back(), now));
}

void Pik2Engine::evaluate(std::int64_t round) {
  if (stopped_) return;
  std::uint64_t invalidated_here = 0;
  for (const auto& seg : segments_) {
    // Churn awareness: rounds straddling a route change on the exchange
    // segment are invalidated (the transient mixes blackholed and detoured
    // traffic with honest forwarding); detection resumes the first settled
    // round on the new path.
    if (churn_invalidated(seg, round)) {
      ++counters_.rounds_invalidated;
      ++invalidated_here;
      continue;
    }
    for (const util::NodeId r : {seg.front(), seg.back()}) {
      if (generators_[r] == nullptr) continue;
      const auto own_it = own_.find({r, seg, round});
      if (own_it == own_.end()) continue;
      const auto peer_it = peer_.find({r, seg, round});
      if (peer_it == peer_.end()) {
        FATIH_TRACE_EMIT(net_.sim().trace(),
                         exchange(net_.sim().now(), obs::TraceSource::kPik2,
                                  obs::TraceCode::kExchangeTimeout, r,
                                  r == seg.front() ? seg.back() : seg.front(), round));
        suspect(r, seg, round, "exchange-timeout");
        continue;
      }
      if (peer_it->second.bloom_form()) {
        // Rebuild our own filter with the peer's shape and estimate the
        // symmetric difference from the XOR population.
        const auto& peer_summary = peer_it->second;
        validation::BloomFilter mine(peer_summary.bloom_words.size() * 64,
                                     peer_summary.bloom_hashes);
        for (auto fp : own_it->second.content) mine.insert(fp);
        const auto theirs = validation::BloomFilter::from_words(peer_summary.bloom_words,
                                                                peer_summary.bloom_hashes);
        const auto est = validation::BloomFilter::estimate_symmetric_difference(mine, theirs);
        const double diff = est.value_or(1e9);  // saturated filter: alarm
        const auto allowance =
            std::max(static_cast<double>(config_.thresholds.max_lost_packets),
                     config_.thresholds.max_lost_fraction *
                         static_cast<double>(own_it->second.content.size())) +
            static_cast<double>(config_.thresholds.max_fabricated);
        // The estimate cannot split lost from fabricated; compare the
        // total difference against the combined allowance (plus the
        // estimator's own noise floor).
        if (diff > allowance + 4.0) suspect(r, seg, round, "tv-failed");
        continue;
      }
      if (peer_it->second.reconciled_form()) {
        // Reconcile the peer's evaluations against our own content; the
        // recovered difference feeds the same thresholds.
        std::set<std::uint64_t> own_elems;
        for (auto fp : own_it->second.content) {
          own_elems.insert(validation::to_field(fp));
        }
        const std::vector<std::uint64_t> local(own_elems.begin(), own_elems.end());
        const auto points = validation::evaluation_points(config_.reconcile_bound + 4);
        const auto result = validation::reconcile(
            net_.sim().metrics(), local, peer_it->second.recon_evals,
            static_cast<std::size_t>(peer_it->second.counters.packets), points,
            config_.reconcile_bound);
        TvOutcome outcome;
        if (!result.has_value()) {
          // Difference beyond the bound: unconditionally suspicious.
          outcome.ok = false;
          outcome.lost = config_.reconcile_bound + 1;
        } else {
          // only_local = packets we have that the peer lacks; orientation
          // decides which side is "lost" vs "fabricated".
          const bool we_are_upstream = r == seg.front();
          const auto here_only = result->only_local.size();
          const auto there_only = result->only_remote.size();
          outcome.lost = we_are_upstream ? here_only : there_only;
          outcome.fabricated = we_are_upstream ? there_only : here_only;
          const auto allowance = std::max(
              config_.thresholds.max_lost_packets,
              static_cast<std::uint64_t>(config_.thresholds.max_lost_fraction *
                                         static_cast<double>(local.size())));
          outcome.ok = outcome.lost <= allowance &&
                       outcome.fabricated <= config_.thresholds.max_fabricated;
        }
        if (!outcome.ok) suspect(r, seg, round, "tv-failed");
        continue;
      }
      // Orient: upstream summary is the segment's front end. Spans into
      // the round stores; evaluate_tv copies nothing but its sort scratch.
      const TvView own_view{own_it->second.content, {}, own_it->second.counters.packets};
      const TvView peer_view{peer_it->second.content, {}, peer_it->second.counters.packets};
      const bool we_are_upstream = r == seg.front();
      const auto outcome =
          evaluate_tv(config_.policy, config_.thresholds, we_are_upstream ? own_view : peer_view,
                      we_are_upstream ? peer_view : own_view);
      if (!outcome.ok) suspect(r, seg, round, "tv-failed");
    }
  }
  // Close the anti-replay window, then drop the round's state (closed
  // rounds can no longer gain equivocation conflicts — the watermark
  // rejects their copies at arrival).
  closed_round_ = std::max(closed_round_, round);
  own_.erase_if([round](const auto& kv) { return std::get<2>(kv.first) <= round; });
  peer_.erase_if([round](const auto& kv) { return std::get<2>(kv.first) <= round; });
  peer_envelope_.erase_if([round](const auto& kv) { return std::get<2>(kv.first) <= round; });
  proof_filed_.erase_if([round](const auto& k) { return std::get<2>(k) <= round; });
  if (invalidated_here > 0) {
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     round_event(net_.sim().now(), obs::TraceSource::kPik2,
                                 obs::TraceCode::kRoundInvalidated, round, invalidated_here));
    FATIH_METRIC_REG(net_.sim().metrics(),
                     counter("pik2.rounds_invalidated").inc(invalidated_here));
  }
  ++counters_.rounds_evaluated;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kPik2,
                               obs::TraceCode::kRoundClose, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pik2.rounds_evaluated").inc());
}

void Pik2Engine::suspect(util::NodeId reporter, const routing::PathSegment& segment,
                         std::int64_t round, const char* cause, double confidence) {
  if (!raised_.insert({reporter, segment, round}).second) return;
  Suspicion s;
  s.reporter = reporter;
  s.segment = segment;
  s.interval = config_.clock.interval_of(round);
  s.cause = cause;
  s.confidence = confidence;
  util::log(util::LogLevel::kInfo, kComponent, "%s", s.to_string().c_str());
  ++counters_.suspicions;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   suspicion(net_.sim().now(), obs::TraceSource::kPik2, reporter,
                             segment.front(), segment.back(), segment.length(), round,
                             confidence, cause));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pik2.suspicions").inc());
  suspicions_.push_back(s);
  if (handler_) handler_(suspicions_.back());
  if (conviction_ != nullptr) {
    // Evidence-free witness vote; whole-segment suspicions never convict
    // (precision > 1), only a precision-1 quorum or a proof does.
    conviction_->accuse(reporter, static_cast<std::uint8_t>(obs::TraceSource::kPik2), segment,
                        round, cause);
  }
}

void Pik2Engine::inject_summary(util::NodeId from, const SegmentSummary& summary) {
  const auto& seg = summary.segment;
  const util::NodeId peer = (from == seg.front()) ? seg.back() : seg.front();
  auto payload = std::make_shared<SegmentSummaryPayload>();
  payload->kind_tag = kKindSegmentSummary;
  payload->envelope = crypto::sign(keys_, from, summary.to_bytes());
  payload->summary = summary;
  const std::uint32_t bytes = payload->summary.wire_bytes();
  exchange_bytes_ += sim::kHeaderBytes + bytes;
  if (channel_ != nullptr) {
    channel_->send(from, peer, std::move(payload), bytes, ReliableChannel::Via::kRouted);
    return;
  }
  sim::PacketHeader hdr;
  hdr.src = from;
  hdr.dst = peer;
  hdr.proto = sim::Protocol::kControl;
  sim::Packet p = net_.make_packet(hdr, bytes);
  p.control = std::move(payload);
  net_.router(from).originate(p);
}

std::uint64_t Pik2Engine::state_fingerprint() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(closed_round_));
  h = util::fnv1a64_word(h, counters_.rounds_opened);
  h = util::fnv1a64_word(h, counters_.rounds_evaluated);
  h = util::fnv1a64_word(h, counters_.rounds_invalidated);
  h = util::fnv1a64_word(h, counters_.suspicions);
  h = util::fnv1a64_word(h, own_.size());
  h = util::fnv1a64_word(h, peer_.size());
  h = util::fnv1a64_word(h, exchange_bytes_);
  for (const Suspicion& s : suspicions_) {
    const std::string text = s.to_string();
    h = util::fnv1a64(text.data(), text.size(), h);
  }
  return h;
}

}  // namespace fatih::detection
