#include "detection/route_epochs.hpp"

#include <memory>

#include "routing/graph.hpp"

namespace fatih::detection {

RouteEpochKeeper::RouteEpochKeeper(sim::Network& net, routing::LinkStateRouting& lsr,
                                   PathCache& cache, util::Duration lookback)
    : net_(net), cache_(cache), lookback_(lookback) {
  last_signature_ = topology_signature();
  lsr.add_route_change_hook(
      [this](util::NodeId, util::SimTime when) { on_route_change(when); });
}

void RouteEpochKeeper::on_route_change(util::SimTime when) {
  const auto sig = topology_signature();
  if (sig == last_signature_) {
    // Same physical topology as the last epoch: either startup convergence
    // (no epoch pushed yet — nothing to do) or a staggered SPF catching up
    // with an already-pushed change — widen the settling window.
    cache_.extend_transition(when);
    return;
  }
  last_signature_ = sig;
  ++epochs_pushed_;
  auto tables =
      std::make_shared<const routing::RoutingTables>(routing::Topology::from_network(net_));
  auto unstable_from = when - lookback_;
  if (unstable_from < util::SimTime::origin()) unstable_from = util::SimTime::origin();
  cache_.push_epoch(std::move(tables), when, unstable_from);
}

std::uint64_t RouteEpochKeeper::topology_signature() const {
  // FNV-1a over the usable subset of the physical adjacency list. The
  // list's order is fixed at wiring time, so the signature is stable
  // across identical physical states.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& adj : net_.adjacencies()) {
    if (!net_.link_usable(adj.from, adj.to)) continue;
    h ^= (static_cast<std::uint64_t>(adj.from) << 32) | adj.to;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace fatih::detection
