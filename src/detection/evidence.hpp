// Evidence-based conviction layer.
//
// Detection engines raise SUSPICIONS (segment-scoped, possibly wrong about
// which endpoint lied). Conviction — removing a router from the fabric —
// demands a strictly higher bar, because a Byzantine router can always
// manufacture suspicions against an honest neighbor. A router is convicted
// only on:
//
//   * an equivocation proof: two MAC-valid envelopes from the same signer
//     whose payloads decode to the SAME statement key (same reporter +
//     segment/queue + round[/part]) with DIFFERENT content. Only the
//     signer can produce such a pair, so the proof is self-incriminating;
//   * forged evidence: a well-signed accusation whose attached "proof"
//     does not check out. The accusation itself is signed, so shipping a
//     fabricated proof convicts the ACCUSER;
//   * a witness quorum: >= `witness_quorum` DISTINCT accusers each filing
//     an evidence-free precision-1 accusation against the same router
//     (self-votes excluded).
//
// Precision-2 accusations NEVER convict: a colluding pair adjacent to an
// honest router X can make {C1,X} and {C2,X} both fail TV, so any
// intersection rule over pairs would convict X (the "sandwich frame",
// DESIGN.md). With these three rules a single liar — or a colluding pair —
// cannot convict an honest router: they contribute at most 2 distinct
// witnesses and cannot fabricate proofs under an honest router's key.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "detection/byzantine.hpp"
#include "detection/flood.hpp"
#include "detection/messages.hpp"
#include "util/flat_map.hpp"

namespace fatih::detection {

/// Checks a two-envelope equivocation proof (see file comment). On
/// success, *culprit is the convicted signer.
[[nodiscard]] bool valid_equivocation_proof(const crypto::KeyRegistry& keys,
                                            std::span<const crypto::SignedEnvelope> evidence,
                                            util::NodeId* culprit);

struct ConvictionConfig {
  /// Distinct precision-1 witnesses required to convict without a proof.
  /// 3 tolerates any single liar AND any colluding pair.
  std::size_t witness_quorum = 3;
};

/// One conviction verdict from the shared ledger.
struct Conviction {
  util::NodeId accused = util::kInvalidNode;
  std::int64_t round = 0;
  /// "equivocation-proof", "forged-evidence" or "witness-quorum".
  std::string basis{};
  std::vector<util::NodeId> witnesses{};
};

/// Floods signed accusations (kKindAccusation) and maintains the
/// conviction ledger. Accusations are verified before re-flood (an invalid
/// copy is dropped at the first honest hop); the ledger itself is
/// evaluated once per unique accusation — the flood is reliable and the
/// rules deterministic, so per-router replicas would be identical, and the
/// single evaluation keeps the simulation state small.
class ConvictionEngine {
 public:
  ConvictionEngine(sim::Network& net, const crypto::KeyRegistry& keys,
                   ConvictionConfig config = {});

  /// Honest entry point: router `accuser` signs and floods an accusation.
  /// `detector` is the raw obs::TraceSource of the engine that raised the
  /// underlying suspicion; `evidence` is empty (witness vote) or an
  /// equivocation proof pair.
  void accuse(util::NodeId accuser, std::uint8_t detector, const routing::PathSegment& accused,
              std::int64_t round, const std::string& cause,
              std::vector<crypto::SignedEnvelope> evidence = {});

  /// Adversarial entry point: floods `acc` under a caller-supplied
  /// envelope without signing locally. Attacks use this to ship forged or
  /// mis-signed accusations; honest accuse() routes through it too.
  void originate_raw(util::NodeId from, const Accusation& acc, crypto::SignedEnvelope env);

  [[nodiscard]] const std::vector<Conviction>& convictions() const { return convictions_; }
  [[nodiscard]] bool convicted(util::NodeId r) const { return convicted_.contains(r); }

  using Handler = std::function<void(const Conviction&)>;
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Valid accusations admitted to the ledger (post-dedup).
  [[nodiscard]] std::uint64_t accusations_accepted() const { return accusations_accepted_; }
  [[nodiscard]] const ByzantineStats& stats() const { return guard_.stats(); }
  [[nodiscard]] const FloodService& flood() const { return *flood_; }

 private:
  void on_accusation(const Accusation& acc);
  void convict(util::NodeId who, std::int64_t round, const char* basis,
               std::vector<util::NodeId> witnesses);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  ConvictionConfig config_;
  ControlGuard guard_;
  std::unique_ptr<FloodService> flood_;
  util::FlatSet<std::uint64_t> processed_;  ///< accusation keys already ledgered
  /// accused -> distinct precision-1 accusers (evidence-free votes).
  util::FlatMap<util::NodeId, util::FlatSet<util::NodeId>> votes_;
  util::FlatSet<util::NodeId> convicted_;
  std::vector<Conviction> convictions_;
  std::uint64_t accusations_accepted_ = 0;
  Handler handler_;
};

}  // namespace fatih::detection
