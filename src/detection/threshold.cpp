#include "detection/threshold.hpp"

#include <cassert>

#include "util/log.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

ThresholdDetector::ThresholdDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                                     const PathCache& paths, util::NodeId queue_owner,
                                     util::NodeId queue_peer, ThresholdConfig config)
    : net_(net),
      paths_(paths),
      owner_(queue_owner),
      peer_(queue_peer),
      config_(config),
      fp_key_(keys.fingerprint_key(queue_owner, queue_peer)) {
  auto& owner_node = net_.router(owner_);

  for (std::size_t i = 0; i < owner_node.interface_count(); ++i) {
    const util::NodeId nbr = owner_node.interface(i).peer();
    if (nbr == peer_) continue;
    auto* nbr_iface = net_.node(nbr).interface_to(owner_);
    if (nbr_iface == nullptr) continue;
    const sim::LinkParams nbr_link = nbr_iface->link();
    const auto proc = owner_node.base_processing_delay();
    nbr_iface->add_transmit_tap([this, nbr_link, proc](const sim::Packet& p, util::SimTime now) {
      if (p.hdr.dst == owner_) return;
      if (paths_.next_hop_after(p.hdr.src, p.hdr.dst, owner_) != peer_) return;
      const auto ts = now + nbr_link.tx_time(p.size_bytes) + nbr_link.delay + proc;
      entries_[config_.clock.round_of(ts)].push_back(
          validation::packet_fingerprint(fp_key_, p));
    });
  }

  net_.node(peer_).add_receive_tap(
      [this](const sim::Packet& p, util::NodeId prev, util::SimTime) {
        if (prev != owner_) return;
        exits_.insert(validation::packet_fingerprint(fp_key_, p));
      });
}

void ThresholdDetector::start() {
  const auto first = config_.clock.interval_of(0).end + config_.settle;
  net_.sim().schedule_at(first, [this] { validate(0); });
}

void ThresholdDetector::validate(std::int64_t round) {
  RoundStats stats;
  stats.round = round;
  if (auto it = entries_.find(round); it != entries_.end()) {
    stats.entries = it->second.size();
    for (validation::Fingerprint fp : it->second) {
      auto eit = exits_.find(fp);
      if (eit != exits_.end()) {
        exits_.erase(eit);
      } else {
        ++stats.lost;
      }
    }
    entries_.erase(it);
  }
  if (stats.lost > config_.loss_threshold) {
    stats.alarmed = true;
    Suspicion s;
    s.reporter = peer_;
    s.segment = routing::PathSegment{owner_, peer_};
    s.interval = config_.clock.interval_of(round);
    s.cause = "static-threshold";
    util::log(util::LogLevel::kInfo, "threshold", "%s", s.to_string().c_str());
    suspicions_.push_back(s);
    if (handler_) handler_(suspicions_.back());
  }
  round_stats_.push_back(stats);

  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.settle;
    net_.sim().schedule_at(next, [this, round] { validate(round + 1); });
  }
}

}  // namespace fatih::detection
