#include "detection/tv.hpp"

#include <algorithm>

#include "validation/summary.hpp"

namespace fatih::detection {

namespace {

std::uint64_t loss_allowance(const TvThresholds& th, std::uint64_t upstream_count) {
  const auto relative =
      static_cast<std::uint64_t>(th.max_lost_fraction * static_cast<double>(upstream_count));
  return std::max(th.max_lost_packets, relative);
}

}  // namespace

TvOutcome evaluate_tv(TvPolicy policy, const TvThresholds& thresholds,
                      const SegmentSummary& upstream, const SegmentSummary& downstream) {
  TvOutcome out;
  if (policy == TvPolicy::kFlow) {
    const std::uint64_t up = upstream.counters.packets;
    const std::uint64_t down = downstream.counters.packets;
    out.lost = up > down ? up - down : 0;
    out.fabricated = down > up ? down - up : 0;
  } else {
    validation::FingerprintSummary up;
    validation::FingerprintSummary down;
    for (auto fp : upstream.content) up.add(fp);
    for (auto fp : downstream.content) down.add(fp);
    out.lost = up.difference(down).size();
    out.fabricated = down.difference(up).size();
    if (policy == TvPolicy::kContentOrder) {
      validation::OrderedSummary sent;
      validation::OrderedSummary received;
      for (auto fp : upstream.content) sent.add(fp);
      for (auto fp : downstream.content) received.add(fp);
      out.reordered = validation::OrderedSummary::reorder_count(sent, received);
    }
  }
  out.ok = out.lost <= loss_allowance(thresholds, upstream.counters.packets) &&
           out.fabricated <= thresholds.max_fabricated &&
           (policy != TvPolicy::kContentOrder || out.reordered <= thresholds.max_reordered);
  return out;
}

}  // namespace fatih::detection
