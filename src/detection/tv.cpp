#include "detection/tv.hpp"

#include <algorithm>
#include <vector>

#include "validation/summary.hpp"

namespace fatih::detection {

namespace {

std::uint64_t loss_allowance(const TvThresholds& th, std::uint64_t upstream_count) {
  const auto relative =
      static_cast<std::uint64_t>(th.max_lost_fraction * static_cast<double>(upstream_count));
  return std::max(th.max_lost_packets, relative);
}

/// Returns the view's pre-sorted span when the caller supplied one, else
/// sorts a scratch copy (kept alive by the caller's scratch vector).
std::span<const validation::Fingerprint> sorted_of(const TvView& v,
                                                   std::vector<validation::Fingerprint>& scratch) {
  if (v.sorted.size() == v.content.size()) return v.sorted;
  scratch.assign(v.content.begin(), v.content.end());
  std::sort(scratch.begin(), scratch.end());
  return scratch;
}

}  // namespace

TvOutcome evaluate_tv(TvPolicy policy, const TvThresholds& thresholds, const TvView& upstream,
                      const TvView& downstream) {
  TvOutcome out;
  if (policy == TvPolicy::kFlow) {
    const std::uint64_t up = upstream.packets;
    const std::uint64_t down = downstream.packets;
    out.lost = up > down ? up - down : 0;
    out.fabricated = down > up ? down - up : 0;
  } else {
    std::vector<validation::Fingerprint> up_scratch;
    std::vector<validation::Fingerprint> down_scratch;
    const auto up_sorted = sorted_of(upstream, up_scratch);
    const auto down_sorted = sorted_of(downstream, down_scratch);
    out.lost = validation::multiset_difference_size(up_sorted, down_sorted);
    out.fabricated = validation::multiset_difference_size(down_sorted, up_sorted);
    if (policy == TvPolicy::kContentOrder) {
      out.reordered = validation::reorder_count(upstream.content, downstream.content);
    }
  }
  out.ok = out.lost <= loss_allowance(thresholds, upstream.packets) &&
           out.fabricated <= thresholds.max_fabricated &&
           (policy != TvPolicy::kContentOrder || out.reordered <= thresholds.max_reordered);
  return out;
}

TvOutcome evaluate_tv(TvPolicy policy, const TvThresholds& thresholds,
                      const SegmentSummary& upstream, const SegmentSummary& downstream) {
  return evaluate_tv(policy, thresholds,
                     TvView{upstream.content, {}, upstream.counters.packets},
                     TvView{downstream.content, {}, downstream.counters.packets});
}

}  // namespace fatih::detection
