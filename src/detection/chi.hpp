// Protocol chi (dissertation ch. 6): compromised-router detection that
// dynamically infers congestive packet loss, so residual losses can be
// attributed to malice without a static threshold.
//
// For each monitored output queue Q of router r toward rd (Fig. 6.1):
//   * every neighbor rs of r records Tinfo(rs, Qin): fingerprint, size,
//     flow and PREDICTED entry time (transmit start + serialization +
//     propagation + r's nominal processing delay) of every packet it feeds
//     toward Q;
//   * r itself reports the packets it originates into Q (the Toriginated
//     term of §2.3's footnote) — a protocol-faulty r may lie here, which
//     the adversarial tests exercise;
//   * rd records Tinfo(rd, Qout) locally from arrivals: exit time =
//     arrival - propagation - serialization;
//   * at the end of each round the neighbors ship signed reports to rd,
//     which replays Q (§6.2.1): exits subtract, entries that later exit
//     add, entries that never exit are drops — congestive iff the
//     predicted queue could not hold them.
//
// Because processing jitter makes prediction inexact, drops are judged
// statistically: a single-packet confidence test (Fig. 6.2) and a combined
// Z-test over a round's losses (§6.2.1), using the error model X = qact -
// qpred ~ N(mu, sigma) calibrated during a trusted learning period.
//
// The RED variant (§6.5) replays the deterministic RedState over the same
// streams to recover each packet's legitimate drop probability p_i, then
// checks observed drops against sum(p_i) globally and per flow (Fig. 6.10).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/byzantine.hpp"
#include "detection/messages.hpp"
#include "detection/path_cache.hpp"
#include "detection/reliable.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "sim/red.hpp"
#include "util/flat_map.hpp"
#include "validation/fingerprint.hpp"
#include "util/stats.hpp"

namespace fatih::detection {

class ConvictionEngine;

struct ChiConfig {
  RoundClock clock;
  /// Report shipping delay after round end; must exceed `grace`.
  util::Duration settle = util::Duration::millis(400);
  /// A packet entering the queue must have exited within `grace` or it is
  /// classified as dropped (max queueing delay + slack).
  util::Duration grace = util::Duration::millis(200);
  /// Rounds of trusted calibration for (mu, sigma) of qact - qpred.
  std::int64_t learning_rounds = 4;
  /// Target significance for the single-packet test (§6.1.3).
  double single_threshold = 0.99;
  /// Target significance for the combined Z-test.
  double combined_threshold = 0.999;
  /// Z threshold for the RED per-flow / global drop-count test (per
  /// round), applied to overdispersion-normalized z scores.
  double red_z_threshold = 5.0;
  /// Z threshold for the cumulative per-flow test (evidence accumulated
  /// across rounds; catches rate-limited attacks like Fig. 6.15's 5%).
  double red_cumulative_z_threshold = 5.0;
  /// Suspicious-count test: H0 probability of a congestive drop looking
  /// individually suspicious, the z threshold, and the minimum count.
  double count_test_p0 = 0.05;
  double count_z_threshold = 4.0;
  std::uint64_t count_test_min = 8;
  /// Conservation of timeliness (§2.4.1): a packet's queue sojourn can
  /// never legitimately exceed a full queue's drain time; anything beyond
  /// (limit drain time) * delay_slack + grace is a malicious delay.
  double delay_slack = 1.5;
  std::uint64_t delayed_packets_min = 3;  ///< per-round alarm threshold
  /// When enabled, ChiEngine ships every report part over a shared
  /// ack/retransmit channel (one per network), so neighbor reports
  /// survive lossy control links; `settle` must cover the retry schedule.
  ReliableConfig reliable;
  std::int64_t rounds = 0;  ///< 0 = run until simulation ends
};

/// Validator for one output queue (r -> rd), hosted at rd.
class QueueValidator {
 public:
  QueueValidator(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                 util::NodeId queue_owner, util::NodeId queue_peer, ChiConfig config);

  void start();

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

  /// Calibrated error-model parameters (valid after learning completes).
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] bool learned() const { return learned_; }

  /// Per-round diagnostics for the benches.
  struct RoundStats {
    std::int64_t round = 0;
    std::uint64_t entries = 0;
    std::uint64_t exits = 0;
    std::uint64_t drops = 0;
    std::uint64_t congestive = 0;  ///< drops explained by the queue model
    std::uint64_t suspicious = 0;  ///< drops the model cannot explain
    std::uint64_t delayed = 0;     ///< sojourns beyond any legitimate queueing
    double max_single_confidence = 0.0;
    double combined_confidence = 0.0;
    double red_expected_drops = 0.0;
    double red_max_flow_z = 0.0;
    bool alarmed = false;
    bool invalidated = false;  ///< round straddled a route change (churn)
  };
  [[nodiscard]] const std::vector<RoundStats>& rounds() const { return round_stats_; }

  /// Churn-awareness: rounds whose replay was skipped because a route
  /// change straddled them. Never counted as suspicions.
  [[nodiscard]] std::uint64_t rounds_invalidated() const {
    return counters_.rounds_invalidated;
  }
  /// Uniform engine introspection (same struct across pi2/pik2/chi).
  [[nodiscard]] const DetectorCounters& counters() const { return counters_; }

  /// FNV fingerprint of the validator's evolving state: watermark,
  /// counters, calibration (mu/sigma bit patterns), per-round stats and
  /// replay-queue occupancy, for checkpoint digests.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// Makes a reporter's shipped report lie (protocol-fault injection): the
  /// mutator may add/remove records or return false to suppress entirely.
  /// Works for the owner's self-report AND for any neighbor — a lying
  /// neighbor is how the framing tests try to pin drops on an honest r.
  using SelfReportMutator = std::function<bool(ChiReport&)>;
  void set_report_mutator(util::NodeId reporter, SelfReportMutator m) {
    mutators_[reporter] = std::move(m);
  }
  void set_self_report_mutator(SelfReportMutator m) { mutators_[owner_] = std::move(m); }

  /// Adversarial entry: signs `report` with `from`'s own key and ships it
  /// to rd. A second, conflicting part for an already-shipped (reporter,
  /// round, part) is an equivocation rd can prove with the two envelopes.
  void inject_report(util::NodeId from, const ChiReport& report);

  /// Optional conviction layer (see Pi2Engine::set_conviction_engine).
  void set_conviction_engine(ConvictionEngine* c) { conviction_ = c; }

  /// Control-plane verification counters (rejected reports, replays, ...).
  [[nodiscard]] const ByzantineStats& guard_stats() const { return guard_.stats(); }

  /// Ground-truth error samples observed during learning (tests).
  [[nodiscard]] const util::RunningStats& error_stats() const { return error_stats_; }

  /// Observer of each raw calibration sample (benches build histograms).
  void set_error_sample_hook(std::function<void(double)> hook) {
    error_sample_hook_ = std::move(hook);
  }

  /// Delivery entry point: a signed neighbor/self report arrived at rd.
  void on_report(const ChiReportPayload& payload);

  /// Ships report parts over `ch` (reliable transport) instead of raw
  /// control packets; `ch` must outlive the validator. Set by ChiEngine.
  void set_channel(ReliableChannel* ch) { channel_ = ch; }

 private:
  struct Entry {
    ChiRecord rec;
    util::NodeId from = util::kInvalidNode;
  };

  void install_taps();
  void ship_reports(std::int64_t round);
  void validate(std::int64_t round);
  void stage_ready_entries(util::SimTime upto, RoundStats& stats);
  void replay_droptail(util::SimTime upto, RoundStats& stats);
  void replay_red(util::SimTime upto, RoundStats& stats);
  void finish_round(std::int64_t round, RoundStats& stats);
  /// Raises a suspicion. An empty `segment` means "attribute the round's
  /// unexplained drops": when every suspicious drop was fed by a single
  /// reporter rs != r, the segment is {rs, r} (either r dropped rs's
  /// packets or rs lied about sending them); otherwise the queue pair
  /// {r, rd}.
  void suspect(std::int64_t round, const char* cause, double confidence,
               routing::PathSegment segment = {});
  [[nodiscard]] routing::PathSegment attributed_segment() const;

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  const PathCache& paths_;
  util::NodeId owner_;  ///< r
  util::NodeId peer_;   ///< rd
  ChiConfig config_;
  ControlGuard guard_;
  ConvictionEngine* conviction_ = nullptr;
  std::int64_t closed_round_ = -1;  ///< highest validated round (watermark)
  ReliableChannel* channel_ = nullptr;
  validation::FingerprintHasher fp_{crypto::SipKey{}};
  sim::LinkParams link_;           ///< the r -> rd link
  std::size_t queue_limit_ = 0;    ///< bytes
  util::Duration owner_proc_;      ///< r's nominal processing delay
  std::optional<sim::RedParams> red_;  ///< set when Q is a RED queue

  // Staging at the neighbors (per neighbor, per round) before shipping.
  // Accounting stores are flat sorted-vector containers (util/flat_map.hpp):
  // std::map iteration order — determinism is load-bearing — with dense
  // lookups.
  util::FlatMap<std::pair<util::NodeId, std::int64_t>, std::vector<ChiRecord>> neighbor_staged_;
  // Arrived reports, merged; all entries not yet replayed, time-ordered.
  std::vector<Entry> pending_entries_;
  // Exits observed locally at rd: fp -> record (consumed by replay).
  util::FlatMap<validation::Fingerprint, ChiRecord> exits_;
  std::vector<ChiRecord> exit_log_;  // time-ordered, not yet replayed
  // Which neighbors owe a report for each round.
  util::FlatMap<std::int64_t, util::FlatSet<util::NodeId>> reports_due_;
  util::FlatSet<std::pair<util::NodeId, std::int64_t>> reports_seen_;  // all parts arrived
  util::FlatMap<std::pair<util::NodeId, std::int64_t>, util::FlatSet<std::uint32_t>> parts_seen_;
  // Equivocation ledger: first MAC-valid envelope per (reporter, round,
  // part); a second, different one completes a self-incriminating proof.
  util::FlatMap<std::tuple<util::NodeId, std::int64_t, std::uint32_t>, crypto::SignedEnvelope>
      part_envelope_;
  util::FlatSet<std::pair<util::NodeId, std::int64_t>> proof_filed_;
  // Per-reporter tally of this round's unexplained drops (framing defense).
  util::FlatMap<util::NodeId, std::uint64_t> suspicious_by_;

  // Replay state. Events are merged into a time-ordered queue that
  // persists across rounds: a departure later than this round's horizon
  // must not be applied before next round's earlier arrivals. The queue is
  // a flat struct-of-rounds store: a vector kept sorted from events_head_
  // onward (each round's batch is sorted then inplace_merged against the
  // unconsumed tail) and consumed by advancing the head cursor — no
  // node allocations and no tail shifting, with the exact ordering the
  // old std::set comparator produced (ts, arrivals-before-departures,
  // insertion seq), so replay order is unchanged.
  struct ReplayEvent {
    util::SimTime ts{};
    bool departure = false;
    bool matched = false;
    bool control = false;
    std::uint32_t ps = 0;
    std::uint32_t flow = 0;
    validation::Fingerprint fp = 0;
    util::NodeId from = util::kInvalidNode;  ///< reporter that claimed the entry
    std::uint64_t seq = 0;  // insertion tie-break

    bool operator<(const ReplayEvent& o) const {
      if (ts != o.ts) return ts < o.ts;
      if (departure != o.departure) return !departure;  // arrivals first
      return seq < o.seq;
    }
  };
  std::vector<ReplayEvent> events_;  ///< sorted from events_head_ on
  std::size_t events_head_ = 0;      ///< first unconsumed event
  std::uint64_t event_seq_ = 0;
  /// Drops the consumed prefix once it dominates the buffer.
  void compact_events();
  double qpred_ = 0.0;
  double max_entry_ps_ = 0.0;  ///< largest packet seen; bounds the race error
  // Cumulative per-flow drop accounting for the RED variant.
  struct FlowCum {
    double expected = 0.0;
    double variance = 0.0;
    std::uint64_t observed = 0;
  };
  util::FlatMap<std::uint32_t, FlowCum> red_cum_;
  FlowCum red_cum_global_;
  /// RED drops cluster (the count-reset dynamics correlate them), so the
  /// Bernoulli variance understates per-flow spread. The dispersion of
  /// per-round standardized residuals is tracked online and divides the z
  /// scores — a self-calibrating overdispersion correction.
  util::RunningStats red_residual_sq_;
  sim::RedState red_state_;

  // Learning.
  util::FlatMap<validation::Fingerprint, double> qact_probe_;  // fp -> qact at entry
  util::RunningStats error_stats_;
  std::function<void(double)> error_sample_hook_;
  bool learned_ = false;
  double mu_ = 0.0;
  double sigma_ = 1.0;

  std::vector<RoundStats> round_stats_;
  DetectorCounters counters_;
  std::vector<Suspicion> suspicions_;
  SuspicionHandler handler_;
  util::FlatMap<util::NodeId, SelfReportMutator> mutators_;
};

/// Convenience wrapper: a fleet of QueueValidators covering every
/// router-to-router queue in the network (or a chosen subset).
class ChiEngine {
 public:
  ChiEngine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
            ChiConfig config);

  /// Monitors one queue; returns the validator for inspection.
  QueueValidator& monitor_queue(util::NodeId owner, util::NodeId peer);
  /// Monitors every router-to-router queue.
  void monitor_all();

  void start();

  [[nodiscard]] std::vector<Suspicion> all_suspicions() const;
  /// Sum of rounds_invalidated over all validators.
  [[nodiscard]] std::uint64_t rounds_invalidated() const;
  /// Uniform engine introspection: the validators' counters, summed.
  [[nodiscard]] DetectorCounters counters() const;
  void set_suspicion_handler(SuspicionHandler h);

  /// Optional conviction layer, forwarded to every validator (existing and
  /// future).
  void set_conviction_engine(ConvictionEngine* c);
  /// Control-plane verification counters, summed over the validators.
  [[nodiscard]] ByzantineStats guard_stats() const;

  [[nodiscard]] const std::vector<std::unique_ptr<QueueValidator>>& validators() const {
    return validators_;
  }

 private:
  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  const PathCache& paths_;
  ChiConfig config_;
  ConvictionEngine* conviction_ = nullptr;
  std::unique_ptr<ReliableChannel> channel_;  ///< shared; null unless enabled
  std::vector<std::unique_ptr<QueueValidator>> validators_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
