// Static-threshold loss detector (dissertation §6.1.1) — the baseline that
// Protocol chi replaces.
//
// Counts packets entering and leaving a router's output queue per round
// and raises an alarm when more than `threshold` packets vanish. The
// benches demonstrate the paper's point: any threshold high enough to
// tolerate genuine congestion bursts also lets through focused attacks
// (queue-full targeting, SYN dropping), and any threshold low enough to
// catch those attacks false-positives under pure congestion (§6.4.3).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/path_cache.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

struct ThresholdConfig {
  RoundClock clock;
  util::Duration settle = util::Duration::millis(400);
  std::uint64_t loss_threshold = 10;  ///< packets per round
  std::int64_t rounds = 0;
};

/// Watches one queue (owner -> peer); same observation points as chi, but
/// the only statistic is the per-round loss count.
class ThresholdDetector {
 public:
  ThresholdDetector(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                    util::NodeId queue_owner, util::NodeId queue_peer, ThresholdConfig config);

  void start();

  struct RoundStats {
    std::int64_t round = 0;
    std::uint64_t entries = 0;
    std::uint64_t lost = 0;
    bool alarmed = false;
  };
  [[nodiscard]] const std::vector<RoundStats>& rounds() const { return round_stats_; }
  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

 private:
  void validate(std::int64_t round);

  sim::Network& net_;
  const PathCache& paths_;
  util::NodeId owner_;
  util::NodeId peer_;
  ThresholdConfig config_;
  crypto::SipKey fp_key_;
  // Entries keyed by round of predicted queue-entry time.
  std::map<std::int64_t, std::vector<validation::Fingerprint>> entries_;
  std::set<validation::Fingerprint> exits_;
  std::vector<RoundStats> round_stats_;
  std::vector<Suspicion> suspicions_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
