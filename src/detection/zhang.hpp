// ZHANG: secure routing in ad-hoc networks (dissertation §3.12; Zhang et
// al.). The closest prior to Protocol chi: per-interface traffic
// validation where a neighbor models the sender's arrival process as
// POISSON and predicts the congestive loss rate from queueing theory; an
// observed loss rate significantly above the prediction is a detection.
// Strong-complete, accurate with precision 2 — per the dissertation — but
// only as sound as the Poisson assumption: bursty traffic (on-off, TCP)
// overflows queues far more than a Poisson model of the same mean rate
// predicts, which is exactly the gap Protocol chi's measurement-based
// replay closes (§6.1.2: "none of these models have been able to capture
// congestion behavior in all situations").
//
// The congestive-loss prediction uses the M/M/1/K blocking probability
// for the fitted arrival rate: p_K = (1-rho) rho^K / (1 - rho^(K+1)).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/path_cache.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

struct ZhangConfig {
  RoundClock clock;
  util::Duration settle = util::Duration::millis(400);
  /// Rounds used to fit the mean arrival rate before tests arm.
  std::int64_t learning_rounds = 3;
  /// Alarm when observed losses exceed predicted by this many standard
  /// deviations (Poisson: variance = mean).
  double z_threshold = 4.0;
  std::int64_t rounds = 0;
};

/// Watches one queue (owner -> peer) with the Poisson-model threshold.
class ZhangDetector {
 public:
  ZhangDetector(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                util::NodeId queue_owner, util::NodeId queue_peer, ZhangConfig config);

  void start();

  struct RoundStats {
    std::int64_t round = 0;
    std::uint64_t entries = 0;
    std::uint64_t lost = 0;
    double predicted_loss = 0;
    bool alarmed = false;
  };
  [[nodiscard]] const std::vector<RoundStats>& rounds() const { return round_stats_; }
  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  /// Fitted mean arrival rate (packets/round) after learning.
  [[nodiscard]] double fitted_rate() const { return fitted_rate_; }

 private:
  void validate(std::int64_t round);
  [[nodiscard]] double predict_loss(double arrivals_per_round) const;

  sim::Network& net_;
  const PathCache& paths_;
  util::NodeId owner_;
  util::NodeId peer_;
  ZhangConfig config_;
  crypto::SipKey fp_key_;
  double service_per_round_ = 0;  ///< packets/round the link can drain
  double queue_packets_ = 0;      ///< K, queue capacity in packets
  std::map<std::int64_t, std::vector<validation::Fingerprint>> entries_;
  std::set<validation::Fingerprint> exits_;
  double fitted_rate_ = 0;
  double rate_accumulator_ = 0;
  std::int64_t rate_samples_ = 0;
  std::vector<RoundStats> round_stats_;
  std::vector<Suspicion> suspicions_;
};

}  // namespace fatih::detection
