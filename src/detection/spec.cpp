#include "detection/spec.hpp"

#include <algorithm>

namespace fatih::detection {

void GroundTruth::mark_traffic_faulty(util::NodeId r, util::SimTime since) {
  traffic_.push_back({r, since});
}

void GroundTruth::mark_protocol_faulty(util::NodeId r, util::SimTime since) {
  protocol_.push_back({r, since});
}

void GroundTruth::mark_churn(const util::TimeInterval& window) { churn_.push_back(window); }

bool GroundTruth::overlaps_churn(const util::TimeInterval& during) const {
  return std::any_of(churn_.begin(), churn_.end(), [&](const util::TimeInterval& w) {
    return w.begin < during.end && during.begin < w.end;
  });
}

bool GroundTruth::is_faulty(util::NodeId r, const util::TimeInterval& during) const {
  const auto hit = [&](const std::vector<Mark>& marks) {
    return std::any_of(marks.begin(), marks.end(), [&](const Mark& m) {
      return m.r == r && m.since < during.end;
    });
  };
  return hit(traffic_) || hit(protocol_);
}

bool GroundTruth::is_faulty_ever(util::NodeId r) const {
  const auto hit = [&](const std::vector<Mark>& marks) {
    return std::any_of(marks.begin(), marks.end(), [&](const Mark& m) { return m.r == r; });
  };
  return hit(traffic_) || hit(protocol_);
}

bool GroundTruth::is_traffic_faulty_ever(util::NodeId r) const {
  return std::any_of(traffic_.begin(), traffic_.end(),
                     [&](const Mark& m) { return m.r == r; });
}

std::vector<util::NodeId> GroundTruth::faulty_routers() const {
  std::set<util::NodeId> out;
  for (const auto& m : traffic_) out.insert(m.r);
  for (const auto& m : protocol_) out.insert(m.r);
  return {out.begin(), out.end()};
}

SpecReport check_accuracy(const std::vector<Suspicion>& suspicions, const GroundTruth& truth,
                          std::size_t precision) {
  SpecReport report;
  for (const Suspicion& s : suspicions) {
    if (truth.is_faulty_ever(s.reporter)) continue;  // faulty reporters don't count
    ++report.suspicions;
    if (s.segment.length() > precision) {
      ++report.oversized;
      continue;
    }
    const bool contains_faulty =
        std::any_of(s.segment.nodes().begin(), s.segment.nodes().end(),
                    [&](util::NodeId r) { return truth.is_faulty(r, s.interval); });
    if (contains_faulty) {
      ++report.accurate;
    } else {
      ++report.violations;
      if (truth.overlaps_churn(s.interval)) ++report.churn_violations;
    }
  }
  return report;
}

bool check_completeness_for(const std::vector<Suspicion>& suspicions, util::NodeId faulty) {
  return std::any_of(suspicions.begin(), suspicions.end(),
                     [&](const Suspicion& s) { return s.segment.contains(faulty); });
}

bool check_completeness_for_after(const std::vector<Suspicion>& suspicions, util::NodeId faulty,
                                  util::SimTime after) {
  return std::any_of(suspicions.begin(), suspicions.end(), [&](const Suspicion& s) {
    return s.interval.begin >= after && s.segment.contains(faulty);
  });
}

}  // namespace fatih::detection
