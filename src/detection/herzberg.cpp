#include "detection/herzberg.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fatih::detection {

namespace {

struct HerzbergAckPayload final : sim::ControlPayload {
  std::uint64_t path_tag = 0;
  validation::Fingerprint fp = 0;
  std::uint32_t from_position = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kKindHerzbergAck; }
};

struct HerzbergFaultPayload final : sim::ControlPayload {
  std::uint64_t path_tag = 0;
  validation::Fingerprint fp = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kKindHerzbergFault; }
};

std::uint64_t tag_of(const routing::Path& path, std::uint32_t flow) {
  constexpr crypto::SipKey kTagKey{0x4845525A42455247ULL, 0x5041544854414721ULL};
  std::vector<std::uint32_t> material(path.begin(), path.end());
  material.push_back(flow);
  return crypto::siphash24(kTagKey, material.data(), material.size() * sizeof(std::uint32_t));
}

constexpr std::uint32_t kAckBytes = 24;

}  // namespace

HerzbergDetector::HerzbergDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                                   routing::Path path, HerzbergConfig config)
    : net_(net),
      keys_(keys),
      path_(std::move(path)),
      config_(config),
      fp_key_(keys.fingerprint_key(path_.front(), path_.back())),
      path_tag_(tag_of(path_, config.flow_id)),
      watches_(path_.size()) {
  const std::size_t last = path_.size() - 1;

  for (std::size_t i = 0; i < path_.size(); ++i) {
    auto& router = net_.router(path_[i]);
    const std::size_t pos = i;

    if (i < last) {
      // Forwarding observer: data packet of the monitored flow heading to
      // the next router on the path.
      router.add_forward_tap([this, pos](const sim::Packet& p, util::NodeId,
                                         std::size_t out_iface, util::SimTime) {
        if (p.is_control() || p.hdr.flow_id != config_.flow_id) return;
        if (net_.router(path_[pos]).interface(out_iface).peer() != path_[pos + 1]) return;
        on_forward(pos, p);
      });
    } else {
      router.add_receive_tap([this](const sim::Packet& p, util::NodeId prev, util::SimTime) {
        if (p.is_control() || p.hdr.flow_id != config_.flow_id) return;
        if (prev != path_[path_.size() - 2]) return;
        on_sink_receive(p);
      });
    }
    if (config_.mode == HerzbergConfig::Mode::kCheckpoint && i > 0 && i < last &&
        is_checkpoint(i)) {
      // Interior checkpoints ack to the previous checkpoint when they
      // FORWARD the packet (an ack means "it moved on", so a checkpoint
      // that drops traffic cannot clear its own segment by acking receipt).
      router.add_forward_tap([this, pos](const sim::Packet& p, util::NodeId,
                                         std::size_t out_iface, util::SimTime) {
        if (p.is_control() || p.hdr.flow_id != config_.flow_id) return;
        if (net_.router(path_[pos]).interface(out_iface).peer() != path_[pos + 1]) return;
        const auto fp = validation::packet_fingerprint(fp_key_, p);
        send_ack(pos, fp, previous_checkpoint(pos));
      });
    }

    // Control visibility: every path router inspects acks and fault
    // announcements passing through or terminating at it.
    router.add_receive_tap([this, pos](const sim::Packet& p, util::NodeId, util::SimTime) {
      if (p.control == nullptr) return;
      if (p.control->kind() == kKindHerzbergAck) {
        const auto& ack = static_cast<const HerzbergAckPayload&>(*p.control);
        if (ack.path_tag == path_tag_) on_ack_seen(pos, ack.fp, ack.from_position);
      } else if (p.control->kind() == kKindHerzbergFault) {
        const auto& fault = static_cast<const HerzbergFaultPayload&>(*p.control);
        if (fault.path_tag != path_tag_) return;
        // A downstream router already announced; stand down.
        auto& table = watches_[pos];
        if (auto it = table.find(fault.fp); it != table.end()) {
          if (it->second.armed) net_.sim().cancel(it->second.timer);
          table.erase(it);
        }
      }
    });
  }
}

bool HerzbergDetector::is_checkpoint(std::size_t position) const {
  if (position == 0 || position + 1 == path_.size()) return true;
  return position % config_.checkpoint_spacing == 0;
}

std::size_t HerzbergDetector::previous_checkpoint(std::size_t position) const {
  for (std::size_t i = position; i-- > 0;) {
    if (is_checkpoint(i)) return i;
  }
  return 0;
}

std::size_t HerzbergDetector::next_checkpoint(std::size_t position) const {
  const std::size_t last = path_.size() - 1;
  for (std::size_t j = position + 1; j < last; ++j) {
    if (is_checkpoint(j)) return j;
  }
  return last;
}

void HerzbergDetector::on_forward(std::size_t position, const sim::Packet& p) {
  const auto fp = validation::packet_fingerprint(fp_key_, p);
  if (position == 0) ++data_seen_;

  const std::size_t last = path_.size() - 1;
  bool arm = false;
  util::Duration timeout;
  switch (config_.mode) {
    case HerzbergConfig::Mode::kEndToEnd:
      // The ack must travel to the sink and back past this router.
      arm = true;
      timeout = config_.per_hop_bound * static_cast<std::int64_t>(2 * (last - position) + 1);
      break;
    case HerzbergConfig::Mode::kHopByHop:
      // Only the source arms a timer; everyone else just acks.
      if (position != 0) {
        send_ack(position, fp, 0);
        return;
      }
      arm = true;
      timeout = config_.per_hop_bound * static_cast<std::int64_t>(2 * last + 1);
      break;
    case HerzbergConfig::Mode::kCheckpoint:
      if (!is_checkpoint(position)) return;
      arm = true;
      timeout = config_.per_hop_bound *
                static_cast<std::int64_t>(2 * (next_checkpoint(position) - position) + 1);
      break;
  }
  if (!arm) return;

  Watch watch;
  watch.armed = true;
  watch.timer =
      net_.sim().schedule_in(timeout, [this, position, fp] { on_timeout(position, fp); });
  watches_[position][fp] = watch;
}

void HerzbergDetector::on_sink_receive(const sim::Packet& p) {
  const auto fp = validation::packet_fingerprint(fp_key_, p);
  const std::size_t last = path_.size() - 1;
  if (config_.mode == HerzbergConfig::Mode::kCheckpoint) {
    send_ack(last, fp, previous_checkpoint(last));
  } else {
    send_ack(last, fp, 0);
  }
}

void HerzbergDetector::send_back(std::size_t from, std::size_t to,
                                 std::shared_ptr<const sim::ControlPayload> payload) {
  sim::PacketHeader hdr;
  hdr.src = path_[from];
  hdr.dst = path_[to];
  hdr.proto = sim::Protocol::kControl;
  sim::Packet p = net_.make_packet(hdr, kAckBytes);
  p.control = std::move(payload);
  // Travel back along the monitored path itself: acks share fate with the
  // path, like the data.
  std::vector<util::NodeId> hops;
  for (std::size_t i = from + 1; i-- > to;) hops.push_back(path_[i]);
  p.source_route = std::make_shared<const std::vector<util::NodeId>>(std::move(hops));
  net_.router(path_[from]).originate(p);
}

void HerzbergDetector::send_ack(std::size_t from_position, validation::Fingerprint fp,
                                std::size_t to_position) {
  ++acks_sent_;
  auto payload = std::make_shared<HerzbergAckPayload>();
  payload->path_tag = path_tag_;
  payload->fp = fp;
  payload->from_position = static_cast<std::uint32_t>(from_position);
  send_back(from_position, to_position, std::move(payload));
}

void HerzbergDetector::send_fault_announcement(std::size_t position,
                                               validation::Fingerprint fp) {
  auto payload = std::make_shared<HerzbergFaultPayload>();
  payload->path_tag = path_tag_;
  payload->fp = fp;
  send_back(position, 0, std::move(payload));
}

void HerzbergDetector::on_ack_seen(std::size_t position, validation::Fingerprint fp,
                                   std::size_t from_position) {
  if (config_.mode == HerzbergConfig::Mode::kHopByHop) {
    if (position == 0) {
      hop_acked_[fp].insert(from_position);
      // The sink's ack completes the packet: disarm and forget.
      if (from_position + 1 == path_.size()) {
        auto& table = watches_[0];
        if (auto it = table.find(fp); it != table.end()) {
          if (it->second.armed) net_.sim().cancel(it->second.timer);
          table.erase(it);
        }
        hop_acked_.erase(fp);
      }
    }
    return;
  }
  // End-to-end / checkpoint: an ack from downstream clears the watch at
  // every router it passes.
  auto& table = watches_[position];
  if (auto it = table.find(fp); it != table.end()) {
    if (it->second.armed) net_.sim().cancel(it->second.timer);
    table.erase(it);
  }
}

void HerzbergDetector::on_timeout(std::size_t position, validation::Fingerprint fp) {
  auto& table = watches_[position];
  auto it = table.find(fp);
  if (it == table.end()) return;
  table.erase(it);

  std::size_t boundary = position;
  const char* cause = "herzberg-e2e-timeout";
  if (config_.mode == HerzbergConfig::Mode::kHopByHop) {
    // Deepest contiguous acked prefix locates the loss.
    std::size_t deepest = 0;
    if (auto ha = hop_acked_.find(fp); ha != hop_acked_.end()) {
      while (ha->second.contains(deepest + 1)) ++deepest;
      hop_acked_.erase(ha);
    }
    boundary = deepest;
    cause = "herzberg-hop-timeout";
  } else if (config_.mode == HerzbergConfig::Mode::kCheckpoint) {
    cause = "herzberg-checkpoint-timeout";
  }
  suspect_from(boundary, cause);
  if (config_.mode == HerzbergConfig::Mode::kEndToEnd && position > 0) {
    send_fault_announcement(position, fp);
  }
}

void HerzbergDetector::suspect_from(std::size_t boundary, const char* cause) {
  const std::size_t last = path_.size() - 1;
  std::size_t hi = std::min(boundary + 1, last);
  if (config_.mode == HerzbergConfig::Mode::kCheckpoint) {
    hi = next_checkpoint(boundary);  // the whole inter-checkpoint segment
  }
  if (first_detection_ == util::SimTime::infinity()) first_detection_ = net_.sim().now();
  // One suspicion per (boundary, second): per-packet alarms would flood.
  const auto key = std::make_pair(boundary, net_.sim().now().nanos() / 1'000'000'000);
  if (!suspected_.insert(key).second) return;

  Suspicion s;
  s.reporter = path_[boundary];
  s.segment = routing::PathSegment(std::vector<util::NodeId>(
      path_.begin() + static_cast<std::ptrdiff_t>(boundary),
      path_.begin() + static_cast<std::ptrdiff_t>(hi) + 1));
  s.interval = {net_.sim().now() - config_.per_hop_bound * 16, net_.sim().now()};
  s.cause = cause;
  util::log(util::LogLevel::kInfo, "herzberg", "%s", s.to_string().c_str());
  suspicions_.push_back(s);
  if (handler_) handler_(s);
}

}  // namespace fatih::detection
