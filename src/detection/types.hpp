// Failure-detector specification types (dissertation §4.2.2).
//
// A detector reports suspicions as (path-segment, time-interval) pairs.
// The spec properties — a-Accuracy and a-Completeness — are checked
// against ground truth by the harness in detection/spec.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "routing/segments.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::detection {

/// A reported suspicion: some router within `segment` behaved in a faulty
/// manner during `interval`.
struct Suspicion {
  util::NodeId reporter = util::kInvalidNode;
  routing::PathSegment segment;
  util::TimeInterval interval;
  /// Detector-specific confidence in [0,1]; 1 for deterministic detectors.
  double confidence = 1.0;
  /// Free-form cause tag ("content-mismatch", "exchange-timeout",
  /// "queue-single", "queue-combined", ...) for forensics.
  std::string cause;

  [[nodiscard]] std::string to_string() const;
};

/// Callback fired when an engine raises a suspicion (response layer).
using SuspicionHandler = std::function<void(const Suspicion&)>;

/// Identifies one traffic-validation round: rounds partition time into
/// intervals of length tau starting at the epoch.
struct RoundClock {
  util::SimTime epoch;
  util::Duration tau = util::Duration::seconds(5);

  [[nodiscard]] std::int64_t round_of(util::SimTime t) const {
    return (t - epoch).count_nanos() / tau.count_nanos();
  }
  [[nodiscard]] util::TimeInterval interval_of(std::int64_t round) const {
    return {epoch + tau * round, epoch + tau * (round + 1)};
  }
};

}  // namespace fatih::detection
