// Failure-detector specification types (dissertation §4.2.2).
//
// A detector reports suspicions as (path-segment, time-interval) pairs.
// The spec properties — a-Accuracy and a-Completeness — are checked
// against ground truth by the harness in detection/spec.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "routing/segments.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::detection {

/// A reported suspicion: some router within `segment` behaved in a faulty
/// manner during `interval`.
struct Suspicion {
  util::NodeId reporter = util::kInvalidNode;
  routing::PathSegment segment{};
  util::TimeInterval interval{};
  /// Detector-specific confidence in [0,1]; 1 for deterministic detectors.
  // fatih-lint: allow(float-free-digest) codecs copy the IEEE-754 bit pattern verbatim; detectors assign it from deterministic expressions only
  double confidence = 1.0;
  /// Free-form cause tag ("content-mismatch", "exchange-timeout",
  /// "queue-single", "queue-combined", ...) for forensics.
  std::string cause{};

  [[nodiscard]] std::string to_string() const;
};

/// Callback fired when an engine raises a suspicion (response layer).
using SuspicionHandler = std::function<void(const Suspicion&)>;

/// Uniform introspection snapshot every engine (pi2, pik2, chi) exposes as
/// `counters()`. One struct with one set of names so tests and benches read
/// any engine the same way; engines also mirror these into the attached
/// MetricsRegistry under "<engine>.<field>".
struct DetectorCounters {
  /// Rounds whose evaluation was scheduled (round timer fired).
  std::uint64_t rounds_opened = 0;
  /// Rounds that reached evaluation (including partially invalidated ones).
  std::uint64_t rounds_evaluated = 0;
  /// (segment, round) evaluations skipped for churn; see rounds_invalidated().
  std::uint64_t rounds_invalidated = 0;
  /// Suspicions raised (post-dedup).
  std::uint64_t suspicions = 0;
};

/// Identifies one traffic-validation round: rounds partition time into
/// intervals of length tau starting at the epoch.
struct RoundClock {
  util::SimTime epoch;
  util::Duration tau = util::Duration::seconds(5);

  [[nodiscard]] std::int64_t round_of(util::SimTime t) const {
    return (t - epoch).count_nanos() / tau.count_nanos();
  }
  [[nodiscard]] util::TimeInterval interval_of(std::int64_t round) const {
    return {epoch + tau * round, epoch + tau * (round + 1)};
  }
};

}  // namespace fatih::detection
