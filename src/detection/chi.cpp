#include "detection/chi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <queue>

#include "crypto/siphash.hpp"
#include "detection/evidence.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

namespace {
constexpr const char* kComponent = "chi";
constexpr double kSigmaFloor = 64.0;  // bytes; guards against degenerate calibration
}  // namespace

QueueValidator::QueueValidator(sim::Network& net, const crypto::KeyRegistry& keys,
                               const PathCache& paths, util::NodeId queue_owner,
                               util::NodeId queue_peer, ChiConfig config)
    : net_(net),
      keys_(keys),
      paths_(paths),
      owner_(queue_owner),
      peer_(queue_peer),
      config_(config),
      guard_(net, keys, obs::TraceSource::kChi, "chi"),
      fp_(keys.fingerprint_key(queue_owner, queue_peer)) {
  auto& owner_node = net_.router(owner_);
  auto* iface = owner_node.interface_to(peer_);
  assert(iface != nullptr && "queue owner must be adjacent to peer");
  link_ = iface->link();
  queue_limit_ = iface->queue().byte_limit();
  owner_proc_ = owner_node.base_processing_delay();
  if (const auto* red = dynamic_cast<const sim::RedQueue*>(&iface->queue())) {
    red_ = red->params();
  }
  install_taps();
}

void QueueValidator::install_taps() {
  auto& owner_node = net_.router(owner_);

  // (1) Neighbor entry recorders: every neighbor of r except rd watches
  // what it transmits toward r that r will forward to rd.
  for (std::size_t i = 0; i < owner_node.interface_count(); ++i) {
    const util::NodeId nbr = owner_node.interface(i).peer();
    if (nbr == peer_) continue;
    auto* nbr_iface = net_.node(nbr).interface_to(owner_);
    if (nbr_iface == nullptr) continue;
    const sim::LinkParams nbr_link = nbr_iface->link();
    nbr_iface->add_transmit_tap([this, nbr, nbr_link](const sim::Packet& p, util::SimTime now) {
      if (p.hdr.dst == owner_) return;
      // Routing in force *now* decides whether r will forward this toward
      // rd; after a reroute the recorder follows the new next hop.
      if (paths_.next_hop_after_at(p.hdr.src, p.hdr.dst, owner_, now) != peer_) return;
      ChiRecord rec;
      rec.fp = fp_(p);
      rec.size_bytes = p.size_bytes;
      rec.flow_id = p.hdr.flow_id;
      rec.control = p.is_control();
      rec.ts = now + nbr_link.tx_time(p.size_bytes) + nbr_link.delay + owner_proc_;
      neighbor_staged_[{nbr, config_.clock.round_of(rec.ts)}].push_back(rec);
    });
  }

  // (2) Self recorder at r: packets r originates into Q (Toriginated).
  owner_node.add_forward_tap(
      [this](const sim::Packet& p, util::NodeId prev, std::size_t out_iface, util::SimTime now) {
        if (prev != owner_) return;
        if (net_.router(owner_).interface(out_iface).peer() != peer_) return;
        ChiRecord rec;
        rec.fp = fp_(p);
        rec.size_bytes = p.size_bytes;
        rec.flow_id = p.hdr.flow_id;
        rec.control = p.is_control();
        rec.ts = now;
        neighbor_staged_[{owner_, config_.clock.round_of(rec.ts)}].push_back(rec);
      });

  // (3) Exit recorder at rd: arrivals from r, backdated to queue exit.
  net_.node(peer_).add_receive_tap([this](const sim::Packet& p, util::NodeId prev,
                                          util::SimTime now) {
    if (prev != owner_) return;
    ChiRecord rec;
    rec.fp = fp_(p);
    rec.size_bytes = p.size_bytes;
    rec.flow_id = p.hdr.flow_id;
    rec.ts = now - link_.delay - link_.tx_time(p.size_bytes);
    exits_.emplace(rec.fp, rec);
  });

  // (4) Report delivery: signed neighbor/self reports addressed to rd.
  net_.node(peer_).add_control_sink(
      [this](const sim::Packet& p, util::NodeId, util::SimTime) {
        if (p.control == nullptr || p.control->kind() != kKindChiReport) return;
        const auto& payload = static_cast<const ChiReportPayload&>(*p.control);
        if (payload.report.queue_owner == owner_ && payload.report.queue_peer == peer_) {
          on_report(payload);
        }
      });

  // (5) Calibration probe, active during the learning period: the true
  // queue occupancy at each accepted entry (trusted-commissioning phase).
  auto* iface = owner_node.interface_to(peer_);
  iface->add_enqueue_tap([this](const sim::Packet& p, util::SimTime now) {
    if (learned_) return;
    if (config_.clock.round_of(now) >= config_.learning_rounds) return;
    // last_admit_depth_bytes, not queue().byte_length(): the pass-through
    // fast path never parks the packet in the queue object.
    const auto* out = net_.router(owner_).interface_to(peer_);
    const double qact_before =
        static_cast<double>(out->last_admit_depth_bytes()) - p.size_bytes;
    qact_probe_[fp_(p)] = qact_before;
  });
}

void QueueValidator::start() {
  const auto ship_at = config_.clock.interval_of(0).end + config_.settle / 4;
  net_.sim().schedule_at(ship_at, [this] { ship_reports(0); });
  const auto validate_at = config_.clock.interval_of(0).end + config_.settle;
  net_.sim().schedule_at(validate_at, [this] { validate(0); });
}

void QueueValidator::ship_reports(std::int64_t round) {
  auto& owner_node = net_.router(owner_);
  util::FlatSet<util::NodeId> reporters;
  for (std::size_t i = 0; i < owner_node.interface_count(); ++i) {
    const util::NodeId nbr = owner_node.interface(i).peer();
    if (nbr != peer_) reporters.insert(nbr);
  }
  reporters.insert(owner_);
  reports_due_[round] = reporters;

  // ~55 records keep each signed part within a 1500-byte MTU; oversized
  // control frames would distort the very queues being validated.
  constexpr std::size_t kRecordsPerPart = 55;
  for (util::NodeId reporter : reporters) {
    std::vector<ChiRecord> records;
    if (auto it = neighbor_staged_.find({reporter, round}); it != neighbor_staged_.end()) {
      records = std::move(it->second);
      neighbor_staged_.erase(it);
    }
    ChiReport whole;
    whole.reporter = reporter;
    whole.queue_owner = owner_;
    whole.queue_peer = peer_;
    whole.round = round;
    whole.records = std::move(records);
    if (auto it = mutators_.find(reporter); it != mutators_.end()) {
      if (!it->second(whole)) continue;  // protocol-faulty: withheld
    }
    const auto parts = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, (whole.records.size() + kRecordsPerPart - 1) /
                                     kRecordsPerPart));
    for (std::uint32_t part = 0; part < parts; ++part) {
      ChiReport piece;
      piece.reporter = whole.reporter;
      piece.queue_owner = owner_;
      piece.queue_peer = peer_;
      piece.round = round;
      piece.part = part;
      piece.parts = parts;
      const std::size_t begin = part * kRecordsPerPart;
      const std::size_t end = std::min(whole.records.size(), begin + kRecordsPerPart);
      piece.records.assign(whole.records.begin() + static_cast<std::ptrdiff_t>(begin),
                           whole.records.begin() + static_cast<std::ptrdiff_t>(end));
      auto payload = std::make_shared<ChiReportPayload>();
      payload->envelope = crypto::sign(keys_, reporter, piece.to_bytes());
      payload->report = std::move(piece);

      // Parts are paced ~2 ms apart so the report train does not bloat the
      // very queue being validated (control bypasses its byte limit); the
      // off-round spacing avoids resonating with common CBR periods.
      const auto send_at = net_.sim().now() + util::Duration::micros(2300) * part;
      const util::NodeId from = reporter;
      if (channel_ != nullptr) {
        const std::uint32_t bytes = payload->report.wire_bytes();
        net_.sim().schedule_at(send_at, [this, from, payload, bytes] {
          channel_->send(from, peer_, payload, bytes, ReliableChannel::Via::kRouted);
        });
        continue;
      }
      sim::PacketHeader hdr;
      hdr.src = reporter;
      hdr.dst = peer_;
      hdr.proto = sim::Protocol::kControl;
      sim::Packet p = net_.make_packet(hdr, payload->report.wire_bytes());
      p.control = payload;
      net_.sim().schedule_at(send_at, [this, from, p] {
        if (net_.is_router(from)) {
          net_.router(from).originate(p);
        } else {
          net_.host(from).send(p);
        }
      });
    }
  }

  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.settle / 4;
    net_.sim().schedule_at(next, [this, round] { ship_reports(round + 1); });
  }
}

void QueueValidator::inject_report(util::NodeId from, const ChiReport& report) {
  auto payload = std::make_shared<ChiReportPayload>();
  payload->envelope = crypto::sign(keys_, from, report.to_bytes());
  payload->report = report;
  if (channel_ != nullptr) {
    channel_->send(from, peer_, payload, payload->report.wire_bytes(),
                   ReliableChannel::Via::kRouted);
    return;
  }
  sim::PacketHeader hdr;
  hdr.src = from;
  hdr.dst = peer_;
  hdr.proto = sim::Protocol::kControl;
  sim::Packet p = net_.make_packet(hdr, payload->report.wire_bytes());
  p.control = payload;
  if (net_.is_router(from)) {
    net_.router(from).originate(p);
  } else {
    net_.host(from).send(p);
  }
}

void QueueValidator::on_report(const ChiReportPayload& payload) {
  // Full admission: MAC + strict canonical decode + reporter identity. The
  // envelope payload is authoritative — the convenience struct riding in
  // the packet is never trusted past routing. Reports arrive as routed
  // unicast, so a rejection has no hop to pin (interior forwarders are
  // opaque); it is counted, and the withheld-report consequence surfaces
  // through missing-report at evaluation.
  std::optional<ChiReport> decoded;
  if (const ControlVerdict v = guard_.check_report(payload.envelope, decoded);
      v != ControlVerdict::kOk) {
    guard_.reject(peer_, util::kInvalidNode, payload.report.round, v, "report");
    return;
  }
  const ChiReport& rep = *decoded;
  if (rep.queue_owner != owner_ || rep.queue_peer != peer_) return;  // other validator's
  if (rep.parts == 0 || rep.part >= rep.parts) {
    guard_.reject(peer_, util::kInvalidNode, rep.round, ControlVerdict::kMalformed,
                  "report-bad-part");
    return;
  }
  // Anti-replay watermark: reports for validated rounds are replays. A
  // small margin can still be a late retransmit of the retry schedule, so
  // staleness only counts — the signer may be honest and the replayer is
  // unattributable on a routed path.
  if (const ControlVerdict v =
          guard_.admit_round(rep.round, closed_round_, config_.clock.round_of(net_.sim().now()));
      v != ControlVerdict::kOk) {
    guard_.reject(peer_, util::kInvalidNode, rep.round, v, "report-replay");
    return;
  }
  // Equivocation ledger: a second MAC-valid part with the same (reporter,
  // round, part) identity but different content is a self-incriminating
  // proof — only the signer can produce the pair.
  const auto stmt = std::make_tuple(rep.reporter, rep.round, rep.part);
  const auto [led, fresh] = part_envelope_.emplace(stmt, payload.envelope);
  if (!fresh && led->second.payload != payload.envelope.payload) {
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     byzantine(net_.sim().now(), obs::TraceSource::kChi,
                               obs::TraceCode::kEquivocationProven, peer_, rep.reporter,
                               rep.round, rep.part, "conflicting-report-parts"));
    FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.chi.equivocations").inc());
    if (conviction_ != nullptr && proof_filed_.insert({rep.reporter, rep.round}).second) {
      conviction_->accuse(peer_, static_cast<std::uint8_t>(obs::TraceSource::kChi),
                          routing::PathSegment{rep.reporter}, rep.round, "equivocation",
                          {led->second, payload.envelope});
    }
    suspect(rep.round, "equivocation", 1.0, routing::PathSegment{rep.reporter});
    return;
  }
  if (reports_seen_.contains({rep.reporter, rep.round})) return;
  auto& got = parts_seen_[{rep.reporter, rep.round}];
  if (!got.insert(rep.part).second) return;  // duplicate part (identical bytes)
  guard_.accept();
  for (const ChiRecord& rec : rep.records) {
    pending_entries_.push_back(Entry{rec, rep.reporter});
  }
  if (got.size() == rep.parts) {
    reports_seen_.insert({rep.reporter, rep.round});
    parts_seen_.erase({rep.reporter, rep.round});
  }
}

void QueueValidator::validate(std::int64_t round) {
  RoundStats stats;
  stats.round = round;
  suspicious_by_.clear();
  ++counters_.rounds_opened;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kChi,
                               obs::TraceCode::kRoundOpen, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("chi.rounds_opened").inc());

  // Churn awareness: a route change anywhere in [round start, now) can
  // redirect the flows feeding Q mid-round and eat reports/acks in the
  // transient, so the replay would mix two routing regimes. The round is
  // invalidated — consumed conservatively, never alarmed; validation
  // resumes the first round fully inside the new epoch.
  const util::SimTime now = net_.sim().now();
  const bool churned = paths_.changed_during(config_.clock.interval_of(round).begin, now);
  if (churned) {
    stats.invalidated = true;
    ++counters_.rounds_invalidated;
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     round_event(now, obs::TraceSource::kChi,
                                 obs::TraceCode::kRoundInvalidated, round));
    FATIH_METRIC_REG(net_.sim().metrics(), counter("chi.rounds_invalidated").inc());
  }

  bool all_reports = true;
  if (auto it = reports_due_.find(round); it != reports_due_.end()) {
    for (util::NodeId reporter : it->second) {
      if (!reports_seen_.contains({reporter, round})) {
        all_reports = false;
        // The report was either withheld by `reporter` or eaten en route
        // (a neighbor's report to rd normally transits r itself), so the
        // faulty router is within {reporter, r} — blaming the queue pair
        // would miss a withholding neighbor entirely.
        if (learned_ && !churned) {
          suspect(round, "missing-report", 1.0,
                  reporter == owner_ ? routing::PathSegment{owner_, peer_}
                                     : routing::PathSegment{reporter, owner_});
        }
      }
    }
    reports_due_.erase(it);
  }

  const util::SimTime horizon = config_.clock.interval_of(round).end;
  if (churned) {
    // Drain everything up to the horizon without judging it, including
    // already-staged replay events, and restart the occupancy prediction.
    std::erase_if(pending_entries_, [&](const Entry& e) { return e.rec.ts <= horizon; });
    exits_.erase_if([&](const auto& kv) { return kv.second.ts <= horizon; });
    while (events_head_ < events_.size() && events_[events_head_].ts <= horizon) {
      ++events_head_;
    }
    compact_events();
    qpred_ = 0.0;
  } else if (all_reports) {
    if (red_.has_value()) {
      replay_red(horizon, stats);
    } else {
      replay_droptail(horizon, stats);
    }
  } else {
    // Without complete reports the replay is meaningless this round;
    // consume state conservatively so qpred stays sane.
    stats.alarmed = true;
    std::erase_if(pending_entries_, [&](const Entry& e) { return e.rec.ts <= horizon; });
    exits_.erase_if([&](const auto& kv) { return kv.second.ts <= horizon; });
    qpred_ = 0.0;
  }

  // Close the anti-replay window: report parts for this round (or older)
  // arriving from now on are replays, rejected at admission. Closed rounds
  // can no longer gain equivocation conflicts either, so their ledger and
  // part-bookkeeping entries are dropped.
  closed_round_ = std::max(closed_round_, round);
  part_envelope_.erase_if([round](const auto& kv) { return std::get<1>(kv.first) <= round; });
  proof_filed_.erase_if([round](const auto& k) { return k.second <= round; });
  reports_seen_.erase_if([round](const auto& k) { return k.second <= round; });
  parts_seen_.erase_if([round](const auto& kv) { return kv.first.second <= round; });

  finish_round(round, stats);
  round_stats_.push_back(stats);
  ++counters_.rounds_evaluated;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kChi,
                               obs::TraceCode::kRoundClose, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("chi.rounds_evaluated").inc());

  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.settle;
    net_.sim().schedule_at(next, [this, round] { validate(round + 1); });
  }
}

void QueueValidator::compact_events() {
  // Reclaim the consumed prefix once it dominates the buffer; amortized
  // O(1) per event, and the unconsumed tail keeps its order.
  if (events_head_ >= 64 && events_head_ * 2 >= events_.size()) {
    events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(events_head_));
    events_head_ = 0;
  }
}

void QueueValidator::stage_ready_entries(util::SimTime upto, RoundStats& stats) {
  // Move entries with predicted time inside the horizon into the event
  // set, pairing each with its observed departure when one exists.
  auto ready = std::partition(pending_entries_.begin(), pending_entries_.end(),
                              [&](const Entry& e) { return e.rec.ts > upto; });
  std::vector<Entry> batch(ready, pending_entries_.end());
  pending_entries_.erase(ready, pending_entries_.end());

  // Conservation of timeliness: the longest legitimate sojourn is a full
  // queue draining at line rate (plus slack and the calibration grace).
  const double drain_seconds =
      static_cast<double>(queue_limit_) * 8.0 / link_.bandwidth_bps;
  const auto max_sojourn =
      util::Duration::from_seconds(drain_seconds * config_.delay_slack) +
      util::Duration::millis(10);

  // Append the round's events then restore order with one sort +
  // inplace_merge against the unconsumed tail — same comparator, so the
  // resulting sequence matches what per-event std::set inserts produced.
  const std::size_t merge_from = events_.size();
  for (const Entry& e : batch) {
    ReplayEvent arrival;
    arrival.ts = e.rec.ts;
    arrival.control = e.rec.control;
    arrival.ps = e.rec.size_bytes;
    arrival.flow = e.rec.flow_id;
    arrival.fp = e.rec.fp;
    arrival.from = e.from;
    arrival.seq = event_seq_++;
    auto it = exits_.find(e.rec.fp);
    if (it != exits_.end()) {
      arrival.matched = true;
      ReplayEvent departure = arrival;
      departure.departure = true;
      departure.ts = it->second.ts;
      departure.seq = event_seq_++;
      if (!e.rec.control && departure.ts > arrival.ts + max_sojourn) {
        ++stats.delayed;  // held far beyond any queueing explanation
      }
      events_.push_back(departure);
      exits_.erase(it);
    }
    events_.push_back(arrival);
    ++stats.entries;
  }
  std::sort(events_.begin() + static_cast<std::ptrdiff_t>(merge_from), events_.end());
  std::inplace_merge(events_.begin() + static_cast<std::ptrdiff_t>(events_head_),
                     events_.begin() + static_cast<std::ptrdiff_t>(merge_from), events_.end());
  if (learned_ && stats.delayed >= config_.delayed_packets_min) {
    suspect(stats.round, "delay-test", 1.0);
    stats.alarmed = true;
  }
  // Departures whose arrival no neighbor claimed would linger forever;
  // age them out (with honest reporters this set stays empty).
  exits_.erase_if([&](const auto& kv) { return kv.second.ts + config_.grace <= upto; });
}

void QueueValidator::replay_droptail(util::SimTime upto, RoundStats& stats) {
  stage_ready_entries(upto, stats);

  // Statistics of this round's unexplained drops for the combined test.
  util::RunningStats drop_qpred;
  util::RunningStats drop_ps;

  while (events_head_ < events_.size() && events_[events_head_].ts <= upto) {
    const ReplayEvent ev = events_[events_head_++];
    if (ev.departure) {
      qpred_ -= ev.ps;
      ++stats.exits;
      continue;
    }
    if (ev.matched) {
      max_entry_ps_ = std::max<double>(max_entry_ps_, ev.ps);
      // Learning probe: compare predicted vs measured occupancy at entry.
      if (!learned_) {
        if (auto it = qact_probe_.find(ev.fp); it != qact_probe_.end()) {
          const double err = it->second - qpred_;
          error_stats_.add(err);
          if (error_sample_hook_) error_sample_hook_(err);
          qact_probe_.erase(it);
        }
      }
      qpred_ += ev.ps;
      continue;
    }
    // A drop. Could the queue have been full?
    ++stats.drops;
    max_entry_ps_ = std::max<double>(max_entry_ps_, ev.ps);
    const double headroom = static_cast<double>(queue_limit_) - qpred_ - ev.ps;
    if (learned_) {
      const double csingle = util::normal_cdf((headroom - mu_) / sigma_);
      stats.max_single_confidence = std::max(stats.max_single_confidence, csingle);
      if (csingle < 0.5) {
        ++stats.congestive;
      } else {
        ++stats.suspicious;
        ++suspicious_by_[ev.from];
      }
      // The prediction error is bounded below by one departing packet (a
      // probe and a departure can straddle the same instant), so a single
      // drop is only damning with at least that much headroom beyond the
      // Gaussian band.
      const double guard = max_entry_ps_ + 4.0 * sigma_;
      if (csingle >= config_.single_threshold && headroom - mu_ >= guard) {
        suspect(stats.round, "single-loss-test", csingle);
        stats.alarmed = true;
      }
      drop_qpred.add(qpred_);
      drop_ps.add(ev.ps);
    } else {
      // During learning every drop is congestive by assumption.
      ++stats.congestive;
    }
  }
  compact_events();

  if (std::getenv("CHI_DEBUG") && drop_qpred.count() >= 2) {
    std::fprintf(stderr, "DBG round=%lld n=%zu mean_qpred=%.0f mean_ps=%.0f headroom=%.0f min_qpred=%.0f max_qpred=%.0f\n",
        (long long)stats.round, drop_qpred.count(), drop_qpred.mean(), drop_ps.mean(),
        (double)queue_limit_ - drop_qpred.mean() - drop_ps.mean(), drop_qpred.min(), drop_qpred.max());
  }
  // Combined Z-test over the round's losses (dissertation §6.2.1).
  if (learned_ && drop_qpred.count() >= 2) {
    const double n = static_cast<double>(drop_qpred.count());
    const double z1 = (static_cast<double>(queue_limit_) - drop_qpred.mean() - drop_ps.mean() -
                       mu_) /
                      (sigma_ / std::sqrt(n));
    stats.combined_confidence = util::normal_cdf(z1);
    if (stats.combined_confidence >= config_.combined_threshold) {
      suspect(stats.round, "combined-loss-test", stats.combined_confidence);
      stats.alarmed = true;
    }
  }

  // Suspicious-count test: under the congestion-only hypothesis, a drop
  // lands in the individually-suspicious band (csingle >= 0.5, i.e. the
  // queue probably had room) only through prediction noise, with
  // probability at most count_test_p0. A binomial excess of such drops —
  // the signature of an attack gated just below the queue limit, like
  // Fig. 6.8's 95%-full trigger — is itself a detection.
  if (learned_ && stats.drops > 0) {
    const double n = static_cast<double>(stats.drops);
    const double p0 = config_.count_test_p0;
    const double bound =
        std::max(static_cast<double>(config_.count_test_min),
                 p0 * n + config_.count_z_threshold * std::sqrt(p0 * (1 - p0) * n));
    if (static_cast<double>(stats.suspicious) > bound) {
      const double zc = (static_cast<double>(stats.suspicious) - p0 * n) /
                        std::sqrt(p0 * (1 - p0) * n);
      suspect(stats.round, "suspicious-count-test", util::normal_cdf(zc));
      stats.alarmed = true;
    }
  }
}

void QueueValidator::replay_red(util::SimTime upto, RoundStats& stats) {
  stage_ready_entries(upto, stats);

  // Per-flow and global drop accounting against the replayed RED model.
  struct FlowAcc {
    double expected = 0.0;
    double variance = 0.0;
    std::uint64_t observed = 0;
  };
  util::FlatMap<std::uint32_t, FlowAcc> flows;
  FlowAcc global;

  while (events_head_ < events_.size() && events_[events_head_].ts <= upto) {
    const ReplayEvent ev = events_[events_head_++];
    if (ev.departure) {
      qpred_ -= ev.ps;
      ++stats.exits;
      if (qpred_ <= 0.0) red_state_.on_queue_empty(ev.ts);
      continue;
    }
    if (ev.control) {
      // Control traffic bypasses RED admission; mirror that in the replay.
      if (ev.matched) {
        qpred_ += ev.ps;
      } else {
        ++stats.drops;
        ++stats.suspicious;
        ++suspicious_by_[ev.from];
      }
      continue;
    }
    const double q_now = std::max(qpred_, 0.0);
    const double pa = red_state_.on_arrival(*red_, static_cast<std::size_t>(q_now), ev.ts);
    auto& acc = flows[ev.flow];
    acc.expected += pa;
    acc.variance += pa * (1.0 - pa);
    global.expected += pa;
    global.variance += pa * (1.0 - pa);

    if (ev.matched) {
      red_state_.on_outcome(false);
      if (!learned_) {
        if (auto it = qact_probe_.find(ev.fp); it != qact_probe_.end()) {
          error_stats_.add(it->second - qpred_);
          if (error_sample_hook_) error_sample_hook_(it->second - qpred_);
          qact_probe_.erase(it);
        }
      }
      qpred_ += ev.ps;
      continue;
    }
    // Dropped.
    ++stats.drops;
    ++acc.observed;
    ++global.observed;
    const double headroom = static_cast<double>(queue_limit_) - qpred_ - ev.ps;
    const bool hard_full = headroom < 0.0;
    // Mirror the queue's count bookkeeping: only a RED early drop resets
    // the inter-drop counter (hard-full and malicious drops do not).
    red_state_.on_outcome(pa > 0.0 && !hard_full);
    if (learned_) {
      if (pa <= 0.0 && !hard_full) {
        // RED would never drop this packet: single-packet test (with the
        // same one-packet boundary-race guard as the drop-tail variant).
        const double csingle = util::normal_cdf((headroom - mu_) / sigma_);
        stats.max_single_confidence = std::max(stats.max_single_confidence, csingle);
        const double guard = max_entry_ps_ + 4.0 * sigma_;
        if (csingle >= config_.single_threshold && headroom - mu_ >= guard) {
          ++stats.suspicious;
          ++suspicious_by_[ev.from];
          suspect(stats.round, "red-single-loss-test", csingle);
          stats.alarmed = true;
        } else if (csingle >= 0.5) {
          ++stats.suspicious;
          ++suspicious_by_[ev.from];
        } else {
          ++stats.congestive;
        }
      } else {
        ++stats.congestive;  // explainable by RED or overflow, pending Z-test
      }
    } else {
      ++stats.congestive;
    }
  }
  compact_events();

  stats.red_expected_drops = global.expected;
  if (learned_) {
    auto z_of = [](const FlowAcc& acc) {
      const double var = std::max(acc.variance, 0.25);
      return (static_cast<double>(acc.observed) - acc.expected) / std::sqrt(var);
    };
    // Dispersion estimate: mean squared standardized residual across
    // flows and rounds. RED's correlated drops make this > 1; dividing z
    // scores by its square root restores a unit-variance null.
    double disp = 1.0;
    if (red_residual_sq_.count() >= 16) {
      disp = std::max(1.0, red_residual_sq_.mean());
    }
    const double zg = z_of(global) / std::sqrt(disp);
    if (zg > config_.red_z_threshold) {
      suspect(stats.round, "red-global-test", util::normal_cdf(zg));
      stats.alarmed = true;
    }
    for (const auto& [flow, acc] : flows) {
      const double raw_zf = z_of(acc);
      const double zf = raw_zf / std::sqrt(disp);
      stats.red_max_flow_z = std::max(stats.red_max_flow_z, zf);
      if (zf > config_.red_z_threshold) {
        suspect(stats.round, "red-flow-test", util::normal_cdf(zf));
        stats.alarmed = true;
      }
      // Feed the dispersion estimator with this round's residual unless it
      // is wildly alarming (keep blatant attacks from poisoning the null).
      if (acc.expected >= 2.0 && std::abs(raw_zf) < 3.0 * std::sqrt(disp) + 6.0) {
        red_residual_sq_.add(raw_zf * raw_zf);
      }
      // Cumulative per-flow evidence: a rate-limited attack (drop 5-10% of
      // the victim, Figs. 6.14/6.15) stays below the per-round threshold
      // but its excess drops accumulate linearly while the noise grows
      // only with sqrt(rounds).
      auto& cum = red_cum_[flow];
      cum.expected += acc.expected;
      cum.variance += acc.variance;
      cum.observed += acc.observed;
    }
    // Evaluate the cumulative test with a bias correction: the replayed
    // model's small systematic error affects all flows proportionally, so
    // each flow's expectation is rescaled by the global observed/expected
    // ratio before testing. A targeted attack shows up as a flow whose
    // drops exceed even the rescaled expectation.
    red_cum_global_.expected += global.expected;
    red_cum_global_.variance += global.variance;
    red_cum_global_.observed += global.observed;
    const double scale =
        red_cum_global_.expected > 1.0
            ? static_cast<double>(red_cum_global_.observed) / red_cum_global_.expected
            : 1.0;
    const double n_obs = static_cast<double>(red_cum_global_.observed);
    for (auto& [flow, cum] : red_cum_) {
      // (i) Absolute-excess test against the bias-rescaled expectation.
      const double expected = cum.expected * scale;
      const double variance = std::max(cum.variance * scale, 1.0);
      const double zc = (static_cast<double>(cum.observed) - expected) / std::sqrt(variance);
      // (ii) Conditional share test: GIVEN the total number of drops, each
      // flow's share must match its model share (sum of its packets' drop
      // probabilities over the global sum). This conditions away the
      // count-reset feedback through which a slow targeted attack can
      // launder its drops into the expectation (Fig. 6.10's reasoning).
      double zs = 0.0;
      if (red_cum_global_.expected > 1.0 && n_obs >= 8.0) {
        const double share = cum.expected / red_cum_global_.expected;
        if (share > 0.0 && share < 1.0) {
          zs = (static_cast<double>(cum.observed) - n_obs * share) /
               std::sqrt(n_obs * share * (1.0 - share));
        }
      }
      const double z_flow = std::max(zc, zs) / std::sqrt(disp);
      if (std::getenv("CHI_DEBUG") != nullptr && cum.observed > 0) {
        std::fprintf(stderr, "CUM round=%lld flow=%u obs=%llu exp=%.1f zc=%.2f zs=%.2f\n",
                     static_cast<long long>(stats.round), flow,
                     static_cast<unsigned long long>(cum.observed), cum.expected, zc, zs);
      }
      stats.red_max_flow_z = std::max(stats.red_max_flow_z, z_flow);
      if (z_flow > config_.red_cumulative_z_threshold) {
        suspect(stats.round, "red-cumulative-flow-test", util::normal_cdf(z_flow));
        stats.alarmed = true;
        cum = FlowCum{};  // restart accumulation after an alarm
      }
    }
    if (zg > stats.red_max_flow_z) stats.red_max_flow_z = zg;
  }
}


void QueueValidator::finish_round(std::int64_t round, RoundStats& stats) {
  (void)stats;
  if (!learned_ && round + 1 >= config_.learning_rounds) {
    mu_ = error_stats_.mean();
    sigma_ = std::max(error_stats_.stddev(), kSigmaFloor);
    learned_ = true;
    qact_probe_.clear();
    util::log(util::LogLevel::kInfo, kComponent,
              "queue %s->%s calibrated: mu=%.1fB sigma=%.1fB (%zu samples)",
              util::node_name(owner_).c_str(), util::node_name(peer_).c_str(), mu_, sigma_,
              error_stats_.count());
  }
}

routing::PathSegment QueueValidator::attributed_segment() const {
  // Framing defense: when every unexplained drop this round was claimed by
  // a single reporter rs != r, the evidence is exactly as consistent with
  // "rs fabricated entries" as with "r dropped rs's packets" — the
  // precision-2 segment is {rs, r}. Blaming the queue pair {r, rd} would
  // let one lying neighbor steer suspicion onto two honest routers.
  if (suspicious_by_.size() == 1) {
    const util::NodeId rs = suspicious_by_.begin()->first;
    if (rs != owner_ && rs != util::kInvalidNode) {
      return routing::PathSegment{rs, owner_};
    }
  }
  return routing::PathSegment{owner_, peer_};
}

void QueueValidator::suspect(std::int64_t round, const char* cause, double confidence,
                             routing::PathSegment segment) {
  // One suspicion per (round, cause).
  for (const Suspicion& s : suspicions_) {
    if (s.cause == cause && s.interval == config_.clock.interval_of(round)) return;
  }
  Suspicion s;
  s.reporter = peer_;
  s.segment = segment.empty() ? attributed_segment() : std::move(segment);
  s.interval = config_.clock.interval_of(round);
  s.cause = cause;
  s.confidence = confidence;
  util::log(util::LogLevel::kInfo, kComponent, "%s", s.to_string().c_str());
  ++counters_.suspicions;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   suspicion(net_.sim().now(), obs::TraceSource::kChi, peer_, s.segment.front(),
                             s.segment.back(), s.segment.length(), round, confidence, cause));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("chi.suspicions").inc());
  suspicions_.push_back(s);
  if (handler_) handler_(suspicions_.back());
  if (conviction_ != nullptr) {
    conviction_->accuse(peer_, static_cast<std::uint8_t>(obs::TraceSource::kChi), s.segment,
                        round, cause);
  }
}

// -------------------------------------------------------------- ChiEngine

ChiEngine::ChiEngine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                     ChiConfig config)
    : net_(net), keys_(keys), paths_(paths), config_(config) {
  if (config_.reliable.enabled) {
    // One channel serves every monitored queue; the dedup key pins each
    // report part to its (reporter, queue, round, part) identity. Delivery
    // still happens through the validators' existing control sinks (the
    // channel does not wrap payloads), and on_report's part bookkeeping
    // absorbs the duplicates that ack loss can produce.
    channel_ = std::make_unique<ReliableChannel>(net_, keys_, kKindChiReport, config_.reliable);
    channel_->set_key_fn([](const sim::ControlPayload& payload) {
      const auto& p = static_cast<const ChiReportPayload&>(payload);
      constexpr crypto::SipKey kKey{0x6368692D7265706FULL, 0x72742D6465647570ULL};
      std::vector<std::byte> bytes;
      crypto::append_bytes(bytes, p.report.reporter);
      crypto::append_bytes(bytes, p.report.queue_owner);
      crypto::append_bytes(bytes, p.report.queue_peer);
      crypto::append_bytes(bytes, p.report.round);
      crypto::append_bytes(bytes, p.report.part);
      crypto::append_bytes(bytes, p.report.parts);
      return crypto::siphash24(kKey, bytes.data(), bytes.size());
    });
  }
}

QueueValidator& ChiEngine::monitor_queue(util::NodeId owner, util::NodeId peer) {
  validators_.push_back(
      std::make_unique<QueueValidator>(net_, keys_, paths_, owner, peer, config_));
  if (channel_ != nullptr) validators_.back()->set_channel(channel_.get());
  if (conviction_ != nullptr) validators_.back()->set_conviction_engine(conviction_);
  return *validators_.back();
}

void ChiEngine::monitor_all() {
  for (const auto& adj : net_.adjacencies()) {
    if (net_.is_router(adj.from) && net_.is_router(adj.to)) {
      monitor_queue(adj.from, adj.to);
    }
  }
}

void ChiEngine::start() {
  for (auto& v : validators_) {
    if (handler_) v->set_suspicion_handler(handler_);
    v->start();
  }
}

std::vector<Suspicion> ChiEngine::all_suspicions() const {
  std::vector<Suspicion> out;
  for (const auto& v : validators_) {
    out.insert(out.end(), v->suspicions().begin(), v->suspicions().end());
  }
  return out;
}

std::uint64_t ChiEngine::rounds_invalidated() const {
  std::uint64_t total = 0;
  for (const auto& v : validators_) total += v->rounds_invalidated();
  return total;
}

DetectorCounters ChiEngine::counters() const {
  DetectorCounters total;
  for (const auto& v : validators_) {
    const DetectorCounters& c = v->counters();
    total.rounds_opened += c.rounds_opened;
    total.rounds_evaluated += c.rounds_evaluated;
    total.rounds_invalidated += c.rounds_invalidated;
    total.suspicions += c.suspicions;
  }
  return total;
}

void ChiEngine::set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

void ChiEngine::set_conviction_engine(ConvictionEngine* c) {
  conviction_ = c;
  for (auto& v : validators_) v->set_conviction_engine(c);
}

ByzantineStats ChiEngine::guard_stats() const {
  ByzantineStats total;
  for (const auto& v : validators_) {
    const ByzantineStats& s = v->guard_stats();
    total.accepted += s.accepted;
    total.rejected_bad_mac += s.rejected_bad_mac;
    total.rejected_signer_mismatch += s.rejected_signer_mismatch;
    total.rejected_malformed += s.rejected_malformed;
    total.rejected_stale += s.rejected_stale;
    total.rejected_future += s.rejected_future;
  }
  return total;
}

std::uint64_t QueueValidator::state_fingerprint() const {
  // fatih-lint: allow(float-free-digest) learned moments enter the hash by IEEE-754 bit pattern, not FP arithmetic; values are pinned cross-worker by the drift suite
  const auto fold_double = [](std::uint64_t acc, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return util::fnv1a64_word(acc, bits);
  };
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(closed_round_));
  h = util::fnv1a64_word(h, counters_.rounds_opened);
  h = util::fnv1a64_word(h, counters_.rounds_evaluated);
  h = util::fnv1a64_word(h, counters_.rounds_invalidated);
  h = util::fnv1a64_word(h, counters_.suspicions);
  h = util::fnv1a64_word(h, learned_ ? 1 : 0);
  h = fold_double(h, mu_);
  h = fold_double(h, sigma_);
  h = fold_double(h, qpred_);
  h = util::fnv1a64_word(h, events_.size() - events_head_);
  h = util::fnv1a64_word(h, pending_entries_.size());
  for (const RoundStats& rs : round_stats_) {
    h = util::fnv1a64_word(h, static_cast<std::uint64_t>(rs.round));
    h = util::fnv1a64_word(h, rs.entries);
    h = util::fnv1a64_word(h, rs.exits);
    h = util::fnv1a64_word(h, rs.drops);
    h = util::fnv1a64_word(h, rs.congestive);
    h = util::fnv1a64_word(h, rs.suspicious);
    h = util::fnv1a64_word(h, rs.delayed);
    h = util::fnv1a64_word(h, (rs.alarmed ? 1u : 0u) | (rs.invalidated ? 2u : 0u));
  }
  for (const Suspicion& s : suspicions_) {
    const std::string text = s.to_string();
    h = util::fnv1a64(text.data(), text.size(), h);
  }
  return h;
}

}  // namespace fatih::detection
