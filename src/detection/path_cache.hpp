// Versioned stable-state path oracle.
//
// The detection protocols assume knowledge of the path a packet will take
// in the stable state (dissertation §4.1: deterministic forwarding lets a
// router "predict the path that a packet will take ... based on its own
// routing tables"). Under topology churn that snapshot goes stale, so the
// cache keeps a sequence of *epochs*: each epoch pairs a RoutingTables
// snapshot with the time it became authoritative and a backdated
// `unstable_from` marking when the transient that produced it may have
// begun (physical failure happens before the SPF that reacts to it).
//
// The un-suffixed accessors (path, next_hop_after, tables) answer from the
// latest epoch and keep their pre-churn semantics; the *_at variants
// answer as of a given time, and path_stable / changed_during are the
// predicates the engines use to invalidate rounds that straddle a
// reconvergence instead of raising false suspicions.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "routing/spf.hpp"
#include "util/time.hpp"

namespace fatih::detection {

class PathCache {
 public:
  explicit PathCache(std::shared_ptr<const routing::RoutingTables> tables) {
    epochs_.push_back(Epoch{util::SimTime::origin(), util::SimTime::origin(), std::move(tables), {}});
  }

  /// The stable path src -> dst in the *latest* epoch (empty when
  /// unreachable). The reference is stable for the cache's lifetime.
  [[nodiscard]] const routing::Path& path(util::NodeId src, util::NodeId dst) const {
    return lookup(epochs_.back(), src, dst);
  }

  /// Next hop after `at` on the latest stable path src -> dst.
  [[nodiscard]] util::NodeId next_hop_after(util::NodeId src, util::NodeId dst,
                                            util::NodeId at) const {
    return hop_after(path(src, dst), at);
  }

  [[nodiscard]] const routing::RoutingTables& tables() const { return *epochs_.back().tables; }

  // ------------------------------------------------------------- versioning

  /// Appends a new epoch: `tables` are authoritative from `start`;
  /// the transient that led to them is assumed to have begun no earlier
  /// than `unstable_from` (<= start).
  void push_epoch(std::shared_ptr<const routing::RoutingTables> tables, util::SimTime start,
                  util::SimTime unstable_from) {
    if (unstable_from > start) unstable_from = start;
    if (unstable_from < epochs_.back().start) unstable_from = epochs_.back().start;
    epochs_.push_back(Epoch{start, unstable_from, std::move(tables), {}});
  }

  /// Widens the latest transition window: another router installed the
  /// same logical tables at `until` (staggered SPF), so the network is not
  /// settled before then. No-op on the initial epoch.
  void extend_transition(util::SimTime until) {
    if (epochs_.size() < 2) return;
    if (until > epochs_.back().start) epochs_.back().start = until;
  }

  /// The path src -> dst as of time `when`.
  [[nodiscard]] const routing::Path& path_at(util::NodeId src, util::NodeId dst,
                                             util::SimTime when) const {
    return lookup(epoch_at(when), src, dst);
  }

  [[nodiscard]] util::NodeId next_hop_after_at(util::NodeId src, util::NodeId dst,
                                               util::NodeId at, util::SimTime when) const {
    return hop_after(path_at(src, dst, when), at);
  }

  [[nodiscard]] const routing::RoutingTables& tables_at(util::SimTime when) const {
    return *epoch_at(when).tables;
  }

  /// True iff the forwarding path src -> dst was one settled path over the
  /// whole of [begin, end): no epoch transition whose window
  /// [unstable_from, start) intersects the interval changed it.
  [[nodiscard]] bool path_stable(util::NodeId src, util::NodeId dst, util::SimTime begin,
                                 util::SimTime end) const {
    for (std::size_t i = 1; i < epochs_.size(); ++i) {
      if (!window_intersects(i, begin, end)) continue;
      if (lookup(epochs_[i - 1], src, dst) != lookup(epochs_[i], src, dst)) return false;
    }
    return true;
  }

  /// True iff *any* epoch transition window intersects [begin, end) —
  /// i.e. the routing fabric was (possibly) in flux somewhere during the
  /// interval, whatever the pair.
  [[nodiscard]] bool changed_during(util::SimTime begin, util::SimTime end) const {
    for (std::size_t i = 1; i < epochs_.size(); ++i) {
      if (window_intersects(i, begin, end)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }

 private:
  struct Epoch {
    util::SimTime start;          ///< tables authoritative from here on
    util::SimTime unstable_from;  ///< transient may have begun this early
    std::shared_ptr<const routing::RoutingTables> tables;
    // std::map, not a hash map or FlatMap: path() hands out references that
    // must stay valid for the cache's lifetime, so the memo needs node
    // stability across later inserts — and its iteration order (if anyone
    // ever walks it) is key order, not hash order.
    mutable std::map<std::uint64_t, routing::Path> memo;
  };

  [[nodiscard]] const Epoch& epoch_at(util::SimTime when) const {
    for (std::size_t i = epochs_.size(); i-- > 1;) {
      if (epochs_[i].start <= when) return epochs_[i];
    }
    return epochs_.front();
  }

  /// Does transition i's window [unstable_from, start) intersect
  /// [begin, end)? Degenerate windows (instant cutover) count when they
  /// fall inside the interval.
  [[nodiscard]] bool window_intersects(std::size_t i, util::SimTime begin,
                                       util::SimTime end) const {
    const auto w_begin = epochs_[i].unstable_from;
    const auto w_end = epochs_[i].start;
    if (w_begin == w_end) return begin <= w_begin && w_begin < end;
    return w_begin < end && begin < w_end;
  }

  static const routing::Path& lookup(const Epoch& e, util::NodeId src, util::NodeId dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    auto it = e.memo.find(key);
    if (it == e.memo.end()) {
      it = e.memo.emplace(key, e.tables->path(src, dst)).first;
    }
    return it->second;
  }

  static util::NodeId hop_after(const routing::Path& p, util::NodeId at) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == at) return p[i + 1];
    }
    return util::kInvalidNode;
  }

  std::deque<Epoch> epochs_;
};

}  // namespace fatih::detection
