// Stable-state path oracle.
//
// The detection protocols assume knowledge of the path a packet will take
// in the stable state (dissertation §4.1: deterministic forwarding lets a
// router "predict the path that a packet will take ... based on its own
// routing tables"). PathCache memoizes the unique shortest path per
// (src, dst) pair from a RoutingTables snapshot.
#pragma once

#include <memory>
#include <unordered_map>

#include "routing/spf.hpp"

namespace fatih::detection {

class PathCache {
 public:
  explicit PathCache(std::shared_ptr<const routing::RoutingTables> tables)
      : tables_(std::move(tables)) {}

  /// The stable path src -> dst (empty when unreachable). The reference is
  /// stable for the cache's lifetime.
  [[nodiscard]] const routing::Path& path(util::NodeId src, util::NodeId dst) const {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_.emplace(key, tables_->path(src, dst)).first;
    }
    return it->second;
  }

  /// Next hop after `at` on the stable path src -> dst, or kInvalidNode.
  [[nodiscard]] util::NodeId next_hop_after(util::NodeId src, util::NodeId dst,
                                            util::NodeId at) const {
    const auto& p = path(src, dst);
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == at) return p[i + 1];
    }
    return util::kInvalidNode;
  }

  [[nodiscard]] const routing::RoutingTables& tables() const { return *tables_; }

 private:
  std::shared_ptr<const routing::RoutingTables> tables_;
  mutable std::unordered_map<std::uint64_t, routing::Path> cache_;
};

}  // namespace fatih::detection
