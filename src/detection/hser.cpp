#include "detection/hser.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fatih::detection {

namespace {

struct HserAckPayload final : sim::ControlPayload {
  std::uint64_t path_tag = 0;
  validation::Fingerprint fp = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kKindHserAck; }
};

struct HserFaultPayload final : sim::ControlPayload {
  std::uint64_t path_tag = 0;
  validation::Fingerprint fp = 0;  ///< the affected packet (cancels timers)
  std::uint32_t boundary = 0;      ///< announces <boundary, boundary+1>
  std::uint8_t is_auth = 0;        ///< 1 = MAC failure, 0 = ack timeout
  [[nodiscard]] std::uint16_t kind() const override { return kKindHserFault; }
};

std::uint64_t tag_of(const routing::Path& path, std::uint32_t flow) {
  constexpr crypto::SipKey kTagKey{0x4853455221212121ULL, 0x5041544854414721ULL};
  std::vector<std::uint32_t> material(path.begin(), path.end());
  material.push_back(flow);
  return crypto::siphash24(kTagKey, material.data(), material.size() * sizeof(std::uint32_t));
}

constexpr std::uint32_t kAckBytes = 24;

}  // namespace

HserDetector::HserDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                           routing::Path path, HserConfig config)
    : net_(net),
      keys_(keys),
      path_(std::move(path)),
      config_(config),
      auth_key_(keys.fingerprint_key(path_.front(), path_.back())),
      path_tag_(tag_of(path_, config.flow_id)),
      timers_(path_.size()) {
  for (std::size_t i = 1; i < path_.size(); ++i) {
    const std::size_t pos = i;
    auto& router = net_.router(path_[i]);
    router.add_receive_tap([this, pos](const sim::Packet& p, util::NodeId prev, util::SimTime) {
      if (p.is_control()) {
        // Acks and fault announcements passing back cancel local timers:
        // whatever they settle is settled for everyone upstream too.
        if (p.control == nullptr) return;
        validation::Fingerprint fp = 0;
        if (p.control->kind() == kKindHserAck) {
          const auto& ack = static_cast<const HserAckPayload&>(*p.control);
          if (ack.path_tag != path_tag_) return;
          fp = ack.fp;
        } else if (p.control->kind() == kKindHserFault) {
          const auto& fault = static_cast<const HserFaultPayload&>(*p.control);
          if (fault.path_tag != path_tag_) return;
          fp = fault.fp;
        } else {
          return;
        }
        if (auto it = timers_[pos].find(fp); it != timers_[pos].end()) {
          net_.sim().cancel(it->second);
          timers_[pos].erase(it);
        }
        return;
      }
      if (p.hdr.flow_id != config_.flow_id) return;
      if (prev != path_[pos - 1]) return;
      on_receive(pos, p);
    });
  }
  // The source consumes acks and fault announcements.
  net_.router(path_[0]).add_control_sink(
      [this](const sim::Packet& p, util::NodeId, util::SimTime) {
        if (p.control == nullptr) return;
        if (p.control->kind() == kKindHserAck) {
          const auto& ack = static_cast<const HserAckPayload&>(*p.control);
          if (ack.path_tag != path_tag_) return;
          ++delivered_;
          for (auto& table : timers_) {
            if (auto it = table.find(ack.fp); it != table.end()) {
              net_.sim().cancel(it->second);
              table.erase(it);
            }
          }
          wire_macs_.erase(ack.fp);
        } else if (p.control->kind() == kKindHserFault) {
          const auto& fault = static_cast<const HserFaultPayload&>(*p.control);
          if (fault.path_tag != path_tag_) return;
          // The hop's announcement supersedes the source's own e2e timer,
          // and only the FIRST announcement per packet counts: the nearest
          // detecting hop reports first, and downstream echoes of the same
          // tampered packet would mis-attribute the fault.
          if (!announced_fps_.insert(fault.fp).second) return;
          if (auto it = timers_[0].find(fault.fp); it != timers_[0].end()) {
            net_.sim().cancel(it->second);
            timers_[0].erase(it);
          }
          wire_macs_.erase(fault.fp);
          announce(fault.boundary, fault.is_auth != 0 ? "hser-auth-failure"
                                                      : "hser-ack-timeout");
        }
      });
}

crypto::MacTag HserDetector::mac_of(const sim::Packet& p) const {
  const auto fp = validation::packet_fingerprint(auth_key_, p);
  return crypto::compute_mac(auth_key_, {reinterpret_cast<const std::byte*>(&fp), sizeof(fp)});
}

void HserDetector::send(std::uint32_t seq, std::uint32_t payload_bytes) {
  sim::PacketHeader hdr;
  hdr.src = path_[0];
  hdr.dst = path_.back();
  hdr.flow_id = config_.flow_id;
  hdr.seq = seq;
  hdr.proto = sim::Protocol::kUdp;
  sim::Packet p = net_.make_packet(hdr, payload_bytes);
  p.source_route = std::make_shared<const std::vector<util::NodeId>>(path_);

  const auto fp = validation::packet_fingerprint(auth_key_, p);
  wire_macs_[fp] = mac_of(p);  // the MAC the packet carries on the wire

  // The source arms an end-to-end timer; hops arm theirs on receipt.
  const auto timeout =
      config_.per_hop_bound * static_cast<std::int64_t>(2 * (path_.size() - 1) + 1);
  timers_[0][fp] = net_.sim().schedule_in(timeout, [this, fp] { on_timeout(0, fp); });
  net_.router(path_[0]).originate(p);
}

void HserDetector::on_receive(std::size_t position, const sim::Packet& p) {
  // Hop-by-hop authentication: recompute the MAC over what ACTUALLY
  // arrived and compare with the MAC the packet carries. A tamperer
  // changes the bytes but cannot forge the source's MAC.
  const auto arrived_fp = validation::packet_fingerprint(auth_key_, p);
  const auto carried = wire_macs_.find(arrived_fp);
  const bool authentic =
      carried != wire_macs_.end() && carried->second == mac_of(p);
  if (!authentic) {
    ++auth_failures_;
    auto payload = std::make_shared<HserFaultPayload>();
    payload->path_tag = path_tag_;
    payload->fp = arrived_fp;
    payload->boundary = static_cast<std::uint32_t>(position - 1);
    payload->is_auth = 1;
    send_back(position, std::move(payload));
    return;  // tampered packets are not forwarded (source will retransmit)
  }

  const std::size_t last = path_.size() - 1;
  if (position == last) {
    // Destination: signed end-to-end ack back to the source.
    auto payload = std::make_shared<HserAckPayload>();
    payload->path_tag = path_tag_;
    payload->fp = arrived_fp;
    send_back(position, std::move(payload));
    return;
  }
  // Interior hop: arm a timeout for the ack passing back through us.
  const auto timeout =
      config_.per_hop_bound * static_cast<std::int64_t>(2 * (last - position) + 1);
  timers_[position][arrived_fp] =
      net_.sim().schedule_in(timeout, [this, position, fp = arrived_fp] {
        on_timeout(position, fp);
      });
}

void HserDetector::on_timeout(std::size_t position, validation::Fingerprint fp) {
  auto& table = timers_[position];
  if (table.erase(fp) == 0) return;
  if (position == 0) {
    // The source's own timer fired with no hop announcement at all: it can
    // only report the path as unresponsive (every hop or the return
    // channel failed), with path-length precision.
    const auto key = std::make_pair(std::size_t{9999},
                                    net_.sim().now().nanos() / 1'000'000'000);
    if (suspected_.insert(key).second) {
      Suspicion s;
      s.reporter = path_[0];
      s.segment = routing::PathSegment(path_);
      s.interval = {net_.sim().now() - config_.per_hop_bound * 16, net_.sim().now()};
      s.cause = "hser-path-unresponsive";
      suspicions_.push_back(s);
    }
    wire_macs_.erase(fp);
  } else {
    auto payload = std::make_shared<HserFaultPayload>();
    payload->path_tag = path_tag_;
    payload->fp = fp;
    payload->boundary = static_cast<std::uint32_t>(position);
    payload->is_auth = 0;
    send_back(position, std::move(payload));
  }
}

void HserDetector::send_back(std::size_t from,
                             std::shared_ptr<const sim::ControlPayload> payload) {
  if (from == 0) return;
  sim::PacketHeader hdr;
  hdr.src = path_[from];
  hdr.dst = path_[0];
  hdr.proto = sim::Protocol::kControl;
  sim::Packet p = net_.make_packet(hdr, kAckBytes);
  p.control = std::move(payload);
  std::vector<util::NodeId> hops;
  for (std::size_t i = from + 1; i-- > 0;) hops.push_back(path_[i]);
  p.source_route = std::make_shared<const std::vector<util::NodeId>>(std::move(hops));
  net_.router(path_[from]).originate(p);
}

void HserDetector::announce(std::size_t boundary_lo, const char* cause) {
  const std::size_t hi = std::min(boundary_lo + 1, path_.size() - 1);
  const auto key = std::make_pair(boundary_lo, net_.sim().now().nanos() / 1'000'000'000);
  if (!suspected_.insert(key).second) return;
  Suspicion s;
  s.reporter = path_[0];
  s.segment = routing::PathSegment{path_[boundary_lo], path_[hi]};
  s.interval = {net_.sim().now() - config_.per_hop_bound * 16, net_.sim().now()};
  s.cause = cause;
  util::log(util::LogLevel::kInfo, "hser", "%s", s.to_string().c_str());
  suspicions_.push_back(s);
}

}  // namespace fatih::detection
