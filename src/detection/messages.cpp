#include "detection/messages.hpp"

namespace fatih::detection {

std::vector<std::byte> SegmentSummary::to_bytes() const {
  std::vector<std::byte> out;
  crypto::append_bytes(out, reporter);
  crypto::append_bytes(out, static_cast<std::uint32_t>(segment.length()));
  for (util::NodeId n : segment.nodes()) crypto::append_bytes(out, n);
  crypto::append_bytes(out, round);
  crypto::append_bytes(out, counters.packets);
  crypto::append_bytes(out, counters.bytes);
  crypto::append_bytes(out, static_cast<std::uint64_t>(content.size()));
  for (validation::Fingerprint fp : content) crypto::append_bytes(out, fp);
  crypto::append_bytes(out, static_cast<std::uint64_t>(recon_evals.size()));
  for (std::uint64_t ev : recon_evals) crypto::append_bytes(out, ev);
  crypto::append_bytes(out, static_cast<std::uint64_t>(bloom_words.size()));
  for (std::uint64_t w : bloom_words) crypto::append_bytes(out, w);
  crypto::append_bytes(out, bloom_hashes);
  return out;
}

std::uint32_t SegmentSummary::wire_bytes() const {
  return 64 + 8 * static_cast<std::uint32_t>(content.size()) +
         8 * static_cast<std::uint32_t>(recon_evals.size()) +
         8 * static_cast<std::uint32_t>(bloom_words.size()) +
         4 * static_cast<std::uint32_t>(segment.length());
}

std::vector<std::byte> ChiReport::to_bytes() const {
  std::vector<std::byte> out;
  crypto::append_bytes(out, reporter);
  crypto::append_bytes(out, queue_owner);
  crypto::append_bytes(out, queue_peer);
  crypto::append_bytes(out, round);
  crypto::append_bytes(out, part);
  crypto::append_bytes(out, parts);
  crypto::append_bytes(out, static_cast<std::uint64_t>(records.size()));
  for (const ChiRecord& rec : records) {
    crypto::append_bytes(out, rec.fp);
    crypto::append_bytes(out, rec.size_bytes);
    crypto::append_bytes(out, rec.flow_id);
    crypto::append_bytes(out, rec.control);
    crypto::append_bytes(out, rec.ts.nanos());
  }
  return out;
}

std::uint32_t ChiReport::wire_bytes() const {
  return 64 + 24 * static_cast<std::uint32_t>(records.size());
}

}  // namespace fatih::detection
