#include "detection/messages.hpp"

namespace fatih::detection {

namespace {
/// True iff `count` elements of `elem_bytes` each can still fit in the
/// remaining input — checked BEFORE any allocation, so a forged length
/// field can never drive an oversized reserve.
bool count_fits(std::span<const std::byte> in, std::size_t offset, std::uint64_t count,
                std::size_t elem_bytes, std::uint64_t cap) {
  if (count > cap) return false;
  if (offset > in.size()) return false;
  return count * elem_bytes <= in.size() - offset;
}
}  // namespace

std::vector<std::byte> SegmentSummary::to_bytes() const {
  std::vector<std::byte> out;
  crypto::append_bytes(out, reporter);
  crypto::append_bytes(out, static_cast<std::uint32_t>(segment.length()));
  for (util::NodeId n : segment.nodes()) crypto::append_bytes(out, n);
  crypto::append_bytes(out, round);
  crypto::append_bytes(out, counters.packets);
  crypto::append_bytes(out, counters.bytes);
  crypto::append_bytes(out, static_cast<std::uint64_t>(content.size()));
  for (validation::Fingerprint fp : content) crypto::append_bytes(out, fp);
  crypto::append_bytes(out, static_cast<std::uint64_t>(recon_evals.size()));
  for (std::uint64_t ev : recon_evals) crypto::append_bytes(out, ev);
  crypto::append_bytes(out, static_cast<std::uint64_t>(bloom_words.size()));
  for (std::uint64_t w : bloom_words) crypto::append_bytes(out, w);
  crypto::append_bytes(out, bloom_hashes);
  return out;
}

std::optional<SegmentSummary> SegmentSummary::from_bytes(std::span<const std::byte> in) {
  SegmentSummary out;
  std::size_t off = 0;
  if (!crypto::read_bytes(in, off, out.reporter)) return std::nullopt;
  std::uint32_t seg_len = 0;
  if (!crypto::read_bytes(in, off, seg_len)) return std::nullopt;
  if (!count_fits(in, off, seg_len, sizeof(util::NodeId), kMaxSegmentNodes)) return std::nullopt;
  std::vector<util::NodeId> nodes;
  nodes.reserve(seg_len);
  for (std::uint32_t i = 0; i < seg_len; ++i) {
    util::NodeId n = util::kInvalidNode;
    if (!crypto::read_bytes(in, off, n)) return std::nullopt;
    nodes.push_back(n);
  }
  out.segment = routing::PathSegment{std::move(nodes)};
  if (!crypto::read_bytes(in, off, out.round)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.counters.packets)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.counters.bytes)) return std::nullopt;
  std::uint64_t content_n = 0;
  if (!crypto::read_bytes(in, off, content_n)) return std::nullopt;
  if (!count_fits(in, off, content_n, sizeof(validation::Fingerprint), kMaxSummaryElements)) {
    return std::nullopt;
  }
  out.content.reserve(content_n);
  for (std::uint64_t i = 0; i < content_n; ++i) {
    validation::Fingerprint fp = 0;
    if (!crypto::read_bytes(in, off, fp)) return std::nullopt;
    out.content.push_back(fp);
  }
  std::uint64_t recon_n = 0;
  if (!crypto::read_bytes(in, off, recon_n)) return std::nullopt;
  if (!count_fits(in, off, recon_n, sizeof(std::uint64_t), kMaxSummaryElements)) {
    return std::nullopt;
  }
  out.recon_evals.reserve(recon_n);
  for (std::uint64_t i = 0; i < recon_n; ++i) {
    std::uint64_t ev = 0;
    if (!crypto::read_bytes(in, off, ev)) return std::nullopt;
    out.recon_evals.push_back(ev);
  }
  std::uint64_t bloom_n = 0;
  if (!crypto::read_bytes(in, off, bloom_n)) return std::nullopt;
  if (!count_fits(in, off, bloom_n, sizeof(std::uint64_t), kMaxSummaryElements)) {
    return std::nullopt;
  }
  out.bloom_words.reserve(bloom_n);
  for (std::uint64_t i = 0; i < bloom_n; ++i) {
    std::uint64_t w = 0;
    if (!crypto::read_bytes(in, off, w)) return std::nullopt;
    out.bloom_words.push_back(w);
  }
  if (!crypto::read_bytes(in, off, out.bloom_hashes)) return std::nullopt;
  if (off != in.size()) return std::nullopt;  // trailing bytes: not canonical
  return out;
}

std::uint32_t SegmentSummary::wire_bytes() const {
  return 64 + 8 * static_cast<std::uint32_t>(content.size()) +
         8 * static_cast<std::uint32_t>(recon_evals.size()) +
         8 * static_cast<std::uint32_t>(bloom_words.size()) +
         4 * static_cast<std::uint32_t>(segment.length());
}

std::vector<std::byte> ChiReport::to_bytes() const {
  std::vector<std::byte> out;
  crypto::append_bytes(out, reporter);
  crypto::append_bytes(out, queue_owner);
  crypto::append_bytes(out, queue_peer);
  crypto::append_bytes(out, round);
  crypto::append_bytes(out, part);
  crypto::append_bytes(out, parts);
  crypto::append_bytes(out, static_cast<std::uint64_t>(records.size()));
  for (const ChiRecord& rec : records) {
    crypto::append_bytes(out, rec.fp);
    crypto::append_bytes(out, rec.size_bytes);
    crypto::append_bytes(out, rec.flow_id);
    crypto::append_bytes(out, rec.control);
    crypto::append_bytes(out, rec.ts.nanos());
  }
  return out;
}

std::uint32_t ChiReport::wire_bytes() const {
  return 64 + 24 * static_cast<std::uint32_t>(records.size());
}

std::optional<ChiReport> ChiReport::from_bytes(std::span<const std::byte> in) {
  ChiReport out;
  std::size_t off = 0;
  if (!crypto::read_bytes(in, off, out.reporter)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.queue_owner)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.queue_peer)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.round)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.part)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.parts)) return std::nullopt;
  std::uint64_t n = 0;
  if (!crypto::read_bytes(in, off, n)) return std::nullopt;
  // One serialized record is fp(8) + size(4) + flow(4) + control(1) + ts(8).
  constexpr std::size_t kRecordBytes = 25;
  if (!count_fits(in, off, n, kRecordBytes, kMaxChiRecords)) return std::nullopt;
  out.records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ChiRecord rec;
    std::int64_t ts_nanos = 0;
    if (!crypto::read_bytes(in, off, rec.fp)) return std::nullopt;
    if (!crypto::read_bytes(in, off, rec.size_bytes)) return std::nullopt;
    if (!crypto::read_bytes(in, off, rec.flow_id)) return std::nullopt;
    if (!crypto::read_bytes(in, off, rec.control)) return std::nullopt;
    if (!crypto::read_bytes(in, off, ts_nanos)) return std::nullopt;
    rec.ts = util::SimTime::from_nanos(ts_nanos);
    out.records.push_back(rec);
  }
  if (off != in.size()) return std::nullopt;
  return out;
}

std::vector<std::byte> Accusation::to_bytes() const {
  std::vector<std::byte> out;
  crypto::append_bytes(out, accuser);
  crypto::append_bytes(out, detector);
  crypto::append_bytes(out, static_cast<std::uint32_t>(accused.length()));
  for (util::NodeId n : accused.nodes()) crypto::append_bytes(out, n);
  crypto::append_bytes(out, round);
  crypto::append_bytes(out, static_cast<std::uint32_t>(cause.size()));
  for (char c : cause) crypto::append_bytes(out, c);
  crypto::append_bytes(out, static_cast<std::uint32_t>(evidence.size()));
  for (const crypto::SignedEnvelope& env : evidence) {
    crypto::append_bytes(out, env.signer);
    crypto::append_bytes(out, static_cast<std::uint32_t>(env.payload.size()));
    out.insert(out.end(), env.payload.begin(), env.payload.end());
    crypto::append_bytes(out, env.tag);
  }
  return out;
}

std::uint32_t Accusation::wire_bytes() const {
  std::uint32_t bytes = 48 + 4 * static_cast<std::uint32_t>(accused.length()) +
                        static_cast<std::uint32_t>(cause.size());
  for (const crypto::SignedEnvelope& env : evidence) {
    bytes += 16 + static_cast<std::uint32_t>(env.payload.size());
  }
  return bytes;
}

std::optional<Accusation> Accusation::from_bytes(std::span<const std::byte> in) {
  Accusation out;
  std::size_t off = 0;
  if (!crypto::read_bytes(in, off, out.accuser)) return std::nullopt;
  if (!crypto::read_bytes(in, off, out.detector)) return std::nullopt;
  std::uint32_t seg_len = 0;
  if (!crypto::read_bytes(in, off, seg_len)) return std::nullopt;
  if (!count_fits(in, off, seg_len, sizeof(util::NodeId), kMaxSegmentNodes)) return std::nullopt;
  std::vector<util::NodeId> nodes;
  nodes.reserve(seg_len);
  for (std::uint32_t i = 0; i < seg_len; ++i) {
    util::NodeId n = util::kInvalidNode;
    if (!crypto::read_bytes(in, off, n)) return std::nullopt;
    nodes.push_back(n);
  }
  out.accused = routing::PathSegment{std::move(nodes)};
  if (!crypto::read_bytes(in, off, out.round)) return std::nullopt;
  std::uint32_t cause_len = 0;
  if (!crypto::read_bytes(in, off, cause_len)) return std::nullopt;
  if (!count_fits(in, off, cause_len, 1, kMaxCauseBytes)) return std::nullopt;
  out.cause.reserve(cause_len);
  for (std::uint32_t i = 0; i < cause_len; ++i) {
    char c = 0;
    if (!crypto::read_bytes(in, off, c)) return std::nullopt;
    out.cause.push_back(c);
  }
  std::uint32_t ev_n = 0;
  if (!crypto::read_bytes(in, off, ev_n)) return std::nullopt;
  if (ev_n > kMaxEvidence) return std::nullopt;
  out.evidence.reserve(ev_n);
  for (std::uint32_t i = 0; i < ev_n; ++i) {
    crypto::SignedEnvelope env;
    if (!crypto::read_bytes(in, off, env.signer)) return std::nullopt;
    std::uint32_t payload_len = 0;
    if (!crypto::read_bytes(in, off, payload_len)) return std::nullopt;
    if (!count_fits(in, off, payload_len, 1, kMaxEvidencePayload)) return std::nullopt;
    env.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(off),
                       in.begin() + static_cast<std::ptrdiff_t>(off + payload_len));
    off += payload_len;
    if (!crypto::read_bytes(in, off, env.tag)) return std::nullopt;
    out.evidence.push_back(std::move(env));
  }
  if (off != in.size()) return std::nullopt;
  return out;
}

}  // namespace fatih::detection
