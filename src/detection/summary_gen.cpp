#include "detection/summary_gen.hpp"

#include <algorithm>

namespace fatih::detection {

SummaryGenerator::SummaryGenerator(sim::Network& net, const crypto::KeyRegistry& keys,
                                   util::NodeId router, RoundClock clock, const PathCache& paths)
    : net_(net),
      keys_(keys),
      router_(router),
      clock_(clock),
      paths_(paths),
      batch_width_(crypto::simd_batch_width()) {
  auto& r = net_.router(router_);
  r.add_forward_tap([this](const sim::Packet& p, util::NodeId prev, std::size_t out_iface,
                           util::SimTime now) { on_forward(p, prev, out_iface, now); });
  r.add_receive_tap([this](const sim::Packet& p, util::NodeId prev, util::SimTime now) {
    on_receive(p, prev, now);
  });
}

void SummaryGenerator::monitor(const routing::PathSegment& segment, std::size_t position,
                               std::uint32_t sample_keep_per_256) {
  Role role;
  role.segment = segment;
  role.position = position;
  role.sample_keep = sample_keep_per_256;
  // All routers of a segment share the key derived from its two ends, so
  // their fingerprints for the same packet agree.
  role.fp = validation::FingerprintHasher(keys_.fingerprint_key(segment.front(), segment.back()));
  roles_.push_back(std::move(role));
}

bool SummaryGenerator::applies(const Role& role, const sim::Packet& p, util::NodeId prev,
                               std::optional<util::NodeId> forwarded_to) const {
  const auto& seg = role.segment.nodes();
  const std::size_t i = role.position;
  if (i >= seg.size() || seg[i] != router_) return false;
  const bool sink = i + 1 == seg.size();
  if (sink != !forwarded_to.has_value()) return false;
  // Alignment with the neighbors named by the segment.
  if (!sink && *forwarded_to != seg[i + 1]) return false;
  if (i > 0 && prev != seg[i - 1]) return false;
  // The packet's stable path must contain the segment, i.e. this traffic
  // genuinely traverses pi (mis-addressed or fabricated traffic that does
  // not belong to pi is not charged to it). The path is the one in force
  // when the packet was created: under churn, traffic launched onto the
  // old path is judged against the old path, not the post-reroute one.
  const auto& path = paths_.path_at(p.hdr.src, p.hdr.dst, p.created);
  return role.segment.within(path);
}

void SummaryGenerator::record(Role& role, const sim::Packet& p) {
  // Defer the hash: buffer the invariant view and flush a lane-width batch
  // through the SIMD kernels. Sampling needs the fingerprint, so it is
  // applied at flush time, in the buffered (arrival) order.
  role.pending.push_back(validation::PacketInvariant::from_packet(p));
  role.pending_rounds.push_back(clock_.round_of(p.created));
  if (role.pending.size() >= batch_width_) {
    flush_role(static_cast<std::size_t>(&role - roles_.data()));
  }
}

void SummaryGenerator::flush_role(std::size_t idx) {
  Role& role = roles_[idx];
  if (role.pending.empty()) return;
  fp_scratch_.resize(role.pending.size());
  role.fp.hash_batch(role.pending.data(), role.pending.size(), fp_scratch_.data());
  for (std::size_t i = 0; i < role.pending.size(); ++i) {
    const validation::Fingerprint fp = fp_scratch_[i];
    if (role.sample_keep < 256 && (fp & 0xFF) >= role.sample_keep) continue;
    Bucket& b = buckets_[{idx, role.pending_rounds[i]}];
    b.counters.add(role.pending[i].size_bytes);
    b.content.push_back(fp);
  }
  role.pending.clear();
  role.pending_rounds.clear();
}

void SummaryGenerator::on_forward(const sim::Packet& p, util::NodeId prev, std::size_t out_iface,
                                  util::SimTime /*now*/) {
  if (!enabled_ || p.is_control()) return;  // only data-plane traffic is validated
  const util::NodeId next = net_.router(router_).interface(out_iface).peer();
  for (Role& role : roles_) {
    if (applies(role, p, prev, next)) record(role, p);
  }
}

void SummaryGenerator::on_receive(const sim::Packet& p, util::NodeId prev, util::SimTime /*now*/) {
  if (!enabled_ || p.is_control()) return;
  for (Role& role : roles_) {
    if (applies(role, p, prev, std::nullopt)) record(role, p);
  }
}

SegmentSummary SummaryGenerator::take_summary(const routing::PathSegment& segment,
                                              std::int64_t round) {
  SegmentSummary out;
  out.reporter = router_;
  out.segment = segment;
  out.round = round;
  for (std::size_t idx = 0; idx < roles_.size(); ++idx) {
    if (roles_[idx].segment != segment) continue;
    flush_role(idx);  // drain the partial batch before reading the bucket
    auto it = buckets_.find({idx, round});
    if (it == buckets_.end()) break;
    out.counters = it->second.counters;
    out.content = std::move(it->second.content);
    buckets_.erase(it);
    break;
  }
  return out;
}

}  // namespace fatih::detection
