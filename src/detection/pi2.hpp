// Protocol Pi2 (dissertation §5.1, Fig. 5.1): strong-complete, accurate
// failure detection with precision 2.
//
// Every router r monitors every (k+2)-path-segment containing r (the set
// Pr). Per round, each router collects info(r, pi, tau) for each pi in Pr,
// signs it, and disseminates it to the routers of pi. Dissemination uses
// robust flooding of signed summaries, which under the good-path condition
// gives all correct routers the same view — the role consensus plays in
// Fig. 5.1 (a router caught signing two different summaries for the same
// (pi, tau) is thereby proven protocol-faulty). Each correct router then
// evaluates TV on every adjacent pair <pi[i], pi[i+1]> and suspects pairs
// that fail, achieving precision 2.
//
// Protocol-faulty behaviours (withheld or corrupted summaries) are
// injectable per router for the adversarial tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "detection/byzantine.hpp"
#include "detection/flood.hpp"
#include "detection/reliable.hpp"
#include "detection/summary_gen.hpp"
#include "detection/tv.hpp"
#include "detection/types.hpp"
#include "util/flat_map.hpp"

namespace fatih::detection {

class ConvictionEngine;

struct Pi2Config {
  RoundClock clock;
  std::size_t k = 1;  ///< AdjacentFault(k)
  /// Wait after round end before building summaries (in-flight packets).
  util::Duration collect_settle = util::Duration::millis(300);
  /// Wait after dissemination before evaluating TV (flood convergence).
  util::Duration evaluate_settle = util::Duration::millis(500);
  TvPolicy policy = TvPolicy::kContent;
  TvThresholds thresholds;
  /// When enabled, every flood hop copy travels over a per-link
  /// ack/retransmit channel, so summaries survive lossy control links;
  /// evaluate_settle must leave room for the retry schedule.
  ReliableConfig reliable;
  std::int64_t rounds = 0;  ///< 0 = run until simulation ends
};

/// The distributed Pi2 engine: one summary generator + evaluator per
/// router, communicating through the simulated network.
class Pi2Engine {
 public:
  /// `terminals`: the routers that source/sink traffic (used to enumerate
  /// the in-use paths and hence the monitored segments).
  Pi2Engine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
            const std::vector<util::NodeId>& terminals, Pi2Config config);

  /// Starts the round scheduler.
  void start();

  /// All suspicions raised so far by any router (deduplicated per
  /// (reporter, segment, round)).
  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

  /// Protocol-fault injection: corrupt (return true to keep, after
  /// mutating) or suppress (return false) router r's outgoing summaries.
  using ReportMutator = std::function<bool(SegmentSummary&)>;
  void set_report_mutator(util::NodeId r, ReportMutator m) { mutators_[r] = std::move(m); }

  /// Adversarial entry: signs `summary` with `from`'s own key and floods
  /// it. Attacks use this to equivocate — emit a second, conflicting
  /// summary for a (segment, round) already disseminated. The attacker
  /// cannot sign as anyone else, so the conflicting pair convicts `from`.
  void inject_summary(util::NodeId from, const SegmentSummary& summary);

  /// Optional conviction layer: when attached, every suspicion is also
  /// filed as a signed accusation and proven equivocations ship both
  /// envelopes as evidence. Engines never convict on their own.
  void set_conviction_engine(ConvictionEngine* c) { conviction_ = c; }

  /// Control-plane verification counters (rejected floods, replays, ...).
  [[nodiscard]] const ByzantineStats& guard_stats() const { return guard_.stats(); }

  /// The segments router r monitors.
  [[nodiscard]] std::vector<routing::PathSegment> monitored_by(util::NodeId r) const;

  /// Transport introspection (overhead accounting in the benches).
  [[nodiscard]] const FloodService& flood() const { return *flood_; }
  /// Null unless config.reliable.enabled.
  [[nodiscard]] const ReliableChannel* channel() const { return channel_.get(); }

  /// Churn-awareness: (segment, round) evaluations skipped because the
  /// round straddled a route change on the monitored segment (or the
  /// segment is off the live path after a reroute). Invalidated rounds
  /// never become suspicions; detection resumes on the new path the next
  /// settled round.
  [[nodiscard]] std::uint64_t rounds_invalidated() const {
    return counters_.rounds_invalidated;
  }
  /// Uniform engine introspection (same struct across pi2/pik2/chi).
  [[nodiscard]] const DetectorCounters& counters() const { return counters_; }

  /// FNV fingerprint of the engine's evolving round state (watermark,
  /// counters, store sizes, raised suspicions), for checkpoint digests.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  void run_round(std::int64_t round);
  void disseminate(std::int64_t round);
  void evaluate(std::int64_t round);
  void suspect(util::NodeId reporter, const routing::PathSegment& pair, std::int64_t round,
               const char* cause);
  /// Full admission check for one arriving flood copy: MAC + canonical
  /// decode + signer identity (guard) and the anti-replay round window.
  ControlVerdict vet(const sim::ControlPayload& payload, std::optional<SegmentSummary>& out,
                     std::int64_t* margin = nullptr) const;
  void on_invalid(util::NodeId at, util::NodeId prev, const sim::ControlPayload& payload);
  void on_delivery(util::NodeId at, const sim::ControlPayload& payload);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  const PathCache& paths_;
  Pi2Config config_;
  ControlGuard guard_;
  ConvictionEngine* conviction_ = nullptr;
  std::int64_t closed_round_ = -1;  ///< highest evaluated round (watermark)
  DetectorCounters counters_;
  std::unique_ptr<ReliableChannel> channel_;  ///< null unless reliable.enabled
  std::unique_ptr<FloodService> flood_;
  std::vector<std::unique_ptr<SummaryGenerator>> generators_;  // per router id (may be null)
  std::vector<routing::PathSegment> segments_;                 // all monitored segments
  // segment index -> member routers; member -> position. Flat (sorted
  // vector) containers: same iteration order as std::map, so the suspicion
  // output stays byte-identical while round evaluation walks dense memory.
  util::FlatMap<routing::PathSegment, std::size_t> segment_ids_;
  // Per-round store, struct-of-arrays. The flood hands every router the
  // same signed copy, so summary contents are NOT stored per receiver:
  // variants_ dedups the distinct signed summaries per statement key
  // (segment id, reporter, round) and received_ maps each (router, key) to
  // a POD {variant index, poisoned} slot — the dense per-receiver array
  // over shared out-of-line content. A slot whose router saw two different
  // signed copies for one key is poisoned (the reporter equivocated).
  static constexpr std::uint32_t kNoVariant = 0xFFFFFFFFu;
  struct Slot {
    std::uint32_t variant = kNoVariant;
    bool poisoned = false;
  };
  util::FlatMap<std::tuple<util::NodeId, std::size_t, util::NodeId, std::int64_t>, Slot>
      received_;
  /// One distinct signed summary: the canonical payload bytes (the
  /// equivocation compare), the counters, the content fingerprints in
  /// forwarding order, and a sorted copy built on first TV use and then
  /// shared by every evaluating router (previously each router re-sorted
  /// the same content for every adjacent pair).
  struct Variant {
    validation::CounterSummary counters;
    std::vector<validation::Fingerprint> content;
    std::vector<std::byte> payload;
    std::vector<validation::Fingerprint> sorted;
  };
  util::FlatMap<std::tuple<std::size_t, util::NodeId, std::int64_t>, std::vector<Variant>>
      variants_;
  util::FlatMap<util::NodeId, ReportMutator> mutators_;
  // Equivocation ledger: first MAC-valid envelope per (segment id,
  // reporter, round); a second, different one completes a proof.
  util::FlatMap<std::tuple<std::size_t, util::NodeId, std::int64_t>, crypto::SignedEnvelope>
      first_envelope_;
  util::FlatSet<std::tuple<std::size_t, util::NodeId, std::int64_t>> proof_filed_;
  std::vector<Suspicion> suspicions_;
  util::FlatSet<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>> raised_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
