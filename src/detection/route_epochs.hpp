// Bridges the routing layer's route-change notifications into PathCache
// epochs.
//
// Every router runs SPF on its own (staggered) schedule, so one physical
// failure produces a burst of route-change hook firings. The keeper
// collapses the burst into at most one new PathCache epoch per physical
// topology change: the first firing after the usable-link set changes
// pushes fresh tables (with the transition window backdated by `lookback`,
// covering the blackholing between the physical failure and the SPF that
// reacted to it); subsequent firings for the same physical state merely
// widen the transition window until the last router has converged.
#pragma once

#include <cstdint>

#include "detection/path_cache.hpp"
#include "routing/link_state.hpp"
#include "sim/network.hpp"
#include "util/time.hpp"

namespace fatih::detection {

class RouteEpochKeeper {
 public:
  /// `lookback` should cover failure detection plus SPF delay — the span
  /// before a table install during which traffic may already have been
  /// blackholed (dead_interval + spf_delay, plus slack, for hello-detected
  /// failures).
  RouteEpochKeeper(sim::Network& net, routing::LinkStateRouting& lsr, PathCache& cache,
                   util::Duration lookback);

  /// How many distinct physical-topology epochs were pushed (excludes the
  /// cache's initial epoch).
  [[nodiscard]] std::size_t epochs_pushed() const { return epochs_pushed_; }

 private:
  void on_route_change(util::SimTime when);
  [[nodiscard]] std::uint64_t topology_signature() const;

  sim::Network& net_;
  PathCache& cache_;
  util::Duration lookback_;
  std::uint64_t last_signature_ = 0;
  std::size_t epochs_pushed_ = 0;
};

}  // namespace fatih::detection
