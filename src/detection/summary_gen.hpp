// Traffic Summary Generator (dissertation Fig. 5.5).
//
// Sits on a router's forwarding path via packet taps and accumulates
// per-(segment, round) summaries of the traffic the router handled along
// each monitored path-segment. The packet's stable path (from the routing
// oracle) decides which segments a packet belongs to; mutable fields are
// excluded from fingerprints.
//
// Roles: at interior/source positions of a segment the router records at
// forward time (what it sent onward); at the sink position it records at
// receive time (what arrived off the segment).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/messages.hpp"
#include "detection/path_cache.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "util/flat_map.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

/// Per-router summary generator.
class SummaryGenerator {
 public:
  SummaryGenerator(sim::Network& net, const crypto::KeyRegistry& keys, util::NodeId router,
                   RoundClock clock, const PathCache& paths);
  SummaryGenerator(const SummaryGenerator&) = delete;
  SummaryGenerator& operator=(const SummaryGenerator&) = delete;

  /// Starts recording for `segment`, in which this router sits at
  /// `position`. `sample_keep_per_256`: record a packet only when its
  /// fingerprint falls into the agreed sampling range (256 = keep all;
  /// Pi(k+2)'s subsampling, §5.2.1).
  void monitor(const routing::PathSegment& segment, std::size_t position,
               std::uint32_t sample_keep_per_256 = 256);

  /// Removes and returns the summary for (segment, round); an empty
  /// summary if nothing was recorded.
  [[nodiscard]] SegmentSummary take_summary(const routing::PathSegment& segment,
                                            std::int64_t round);

  [[nodiscard]] util::NodeId router() const { return router_; }

  /// Disables recording (taps stay registered but become no-ops); used
  /// when a monitoring set is retired after re-commissioning.
  void set_enabled(bool enabled) { enabled_ = enabled; }

 private:
  struct Role {
    routing::PathSegment segment;
    std::size_t position = 0;
    std::uint32_t sample_keep = 256;
    /// Schedule-cached hasher for the segment key (record() runs per packet).
    validation::FingerprintHasher fp{crypto::SipKey{}};
    /// Packets awaiting fingerprinting, in arrival order. Invariant views
    /// are contiguous (hash_batch's stride requirement); pending_rounds is
    /// the parallel per-packet round index. Hashed lane-width at a time —
    /// flush_role drains the batch through the SIMD SipHash kernels, then
    /// applies sampling and bucket insertion in the buffered order, so
    /// summaries are byte-identical to the per-packet path.
    std::vector<validation::PacketInvariant> pending;
    std::vector<std::int64_t> pending_rounds;
  };
  struct Bucket {
    validation::CounterSummary counters;
    std::vector<validation::Fingerprint> content;  // forwarding order
  };

  void on_forward(const sim::Packet& p, util::NodeId prev, std::size_t out_iface,
                  util::SimTime now);
  void on_receive(const sim::Packet& p, util::NodeId prev, util::SimTime now);
  void record(Role& role, const sim::Packet& p);
  /// Hashes the role's pending batch and moves the results into the
  /// per-round buckets. Called when the batch reaches lane width and
  /// before any summary is taken.
  void flush_role(std::size_t idx);
  [[nodiscard]] bool applies(const Role& role, const sim::Packet& p, util::NodeId prev,
                             std::optional<util::NodeId> forwarded_to) const;

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  util::NodeId router_;
  RoundClock clock_;
  const PathCache& paths_;
  bool enabled_ = true;
  /// Lane width of the active SipHash dispatch level, sampled once at
  /// construction; pending batches flush when they reach it.
  std::size_t batch_width_;
  std::vector<Role> roles_;
  std::vector<validation::Fingerprint> fp_scratch_;  // flush_role digest buffer
  // Keyed by (role index, round); flat store, std::map iteration order.
  util::FlatMap<std::pair<std::size_t, std::int64_t>, Bucket> buckets_;
};

}  // namespace fatih::detection
