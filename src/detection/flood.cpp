#include "detection/flood.hpp"

#include "detection/reliable.hpp"

namespace fatih::detection {

FloodService::FloodService(sim::Network& net, std::uint16_t kind) : net_(net), kind_(kind) {
  seen_.resize(net_.node_count());
  for (util::NodeId n = 0; n < net_.node_count(); ++n) {
    if (!net_.is_router(n)) continue;
    net_.node(n).add_control_sink(
        [this, n](const sim::Packet& p, util::NodeId prev, util::SimTime) {
          on_control(n, p, prev);
        });
  }
}

void FloodService::originate(util::NodeId from, std::shared_ptr<const sim::ControlPayload> payload,
                             std::uint32_t wire_bytes) {
  const std::uint64_t key = key_fn_(*payload);
  if (!seen_[from].insert(key).second) return;
  if (delivery_fn_) delivery_fn_(from, *payload, net_.sim().now());
  forward_copies(from, std::move(payload), wire_bytes, util::kInvalidNode);
}

void FloodService::on_control(util::NodeId at, const sim::Packet& p, util::NodeId prev) {
  if (p.control == nullptr || p.control->kind() != kind_) return;
  if (validate_fn_ && !validate_fn_(at, *p.control)) {
    if (invalid_fn_) invalid_fn_(at, prev, *p.control, net_.sim().now());
    return;
  }
  const std::uint64_t key = key_fn_(*p.control);
  if (!seen_[at].insert(key).second) return;  // duplicate
  if (delivery_fn_) delivery_fn_(at, *p.control, net_.sim().now());
  if (suppressed_.contains(at)) return;  // protocol-faulty: won't re-flood
  forward_copies(at, std::shared_ptr<const sim::ControlPayload>(p.control), p.size_bytes, prev);
}

void FloodService::forward_copies(util::NodeId at,
                                  std::shared_ptr<const sim::ControlPayload> payload,
                                  std::uint32_t bytes, util::NodeId except_peer) {
  auto& node = net_.node(at);
  for (std::size_t i = 0; i < node.interface_count(); ++i) {
    auto& iface = node.interface(i);
    if (iface.peer() == except_peer) continue;
    if (!net_.is_router(iface.peer())) continue;
    ++copies_sent_;
    bytes_sent_ += sim::kHeaderBytes + bytes;
    if (channel_ != nullptr) {
      channel_->send(at, iface.peer(), payload, bytes, ReliableChannel::Via::kDirect);
      continue;
    }
    sim::PacketHeader hdr;
    hdr.src = at;
    hdr.dst = iface.peer();
    hdr.proto = sim::Protocol::kControl;
    sim::Packet copy = net_.make_packet(hdr, bytes);
    copy.control = payload;
    iface.send(copy);
  }
}

}  // namespace fatih::detection
