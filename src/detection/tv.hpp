// The traffic-validation predicate TV(pi, info_i, info_j) (dissertation
// §4.2.1), parameterized by conservation policy and tolerance thresholds.
//
// Real networks lose a little traffic benignly, so TV accepts bounded loss
// (the static-threshold compromise of §6.1.1 that Protocol chi later
// replaces); fabrication and modification have no benign cause and default
// to zero tolerance.
#pragma once

#include <cstdint>
#include <span>

#include "detection/messages.hpp"

namespace fatih::detection {

enum class TvPolicy {
  kFlow,          ///< conservation of flow: packet/byte counters only
  kContent,       ///< conservation of content: fingerprint sets
  kContentOrder,  ///< content + conservation of order (LCS reorder metric)
};

struct TvThresholds {
  std::uint64_t max_lost_packets = 0;  ///< absolute allowance per round
  double max_lost_fraction = 0.0;      ///< relative allowance (of upstream count)
  std::uint64_t max_fabricated = 0;
  std::uint64_t max_reordered = 0;
};

struct TvOutcome {
  bool ok = true;
  std::uint64_t lost = 0;        ///< upstream-only packets
  std::uint64_t fabricated = 0;  ///< downstream-only packets
  std::uint64_t reordered = 0;   ///< |common| - |LCS|
};

/// Zero-copy view of one side of a TV evaluation: `content` is the
/// fingerprints in forwarding order, `packets` the counter term. `sorted`
/// may carry a pre-sorted copy of the same multiset — engines that
/// evaluate one summary many times (Pi2's per-router sweep) sort once and
/// reuse it; leave it empty (any size != content.size()) and evaluate_tv
/// sorts an internal scratch copy instead.
struct TvView {
  std::span<const validation::Fingerprint> content;
  std::span<const validation::Fingerprint> sorted = {};
  std::uint64_t packets = 0;
};

/// Evaluates TV between an upstream router's summary and the next
/// downstream router's summary for the same segment and round. The view
/// overload is the core — it reads straight out of the engines' round
/// stores; the SegmentSummary overload wraps and delegates.
[[nodiscard]] TvOutcome evaluate_tv(TvPolicy policy, const TvThresholds& thresholds,
                                    const TvView& upstream, const TvView& downstream);
[[nodiscard]] TvOutcome evaluate_tv(TvPolicy policy, const TvThresholds& thresholds,
                                    const SegmentSummary& upstream,
                                    const SegmentSummary& downstream);

}  // namespace fatih::detection
