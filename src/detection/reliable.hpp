// Reliable control transport for the detection protocols.
//
// The dissertation's threat model (§2.2.1) already charges protocol-faulty
// routers with dropping the detection protocol's own traffic, and the
// Fatih prototype ran its validator exchanges over TCP for exactly that
// reason (§5.3.1). This layer supplies the equivalent in the simulator: an
// ack/retransmit channel with per-destination RTO estimation (Jacobson
// SRTT/RTTVAR with Karn's rule), exponential backoff with deterministic
// jitter, a bounded retry budget, and receiver-side duplicate suppression.
// Every retry is bounded, so a withheld or undeliverable summary surfaces
// as a FailureFn callback instead of a silently stalled round — the
// detectors turn that into a *suspicion* (withholding is itself evidence).
//
// The channel does not wrap payloads: packets carry the original
// ControlPayload, so existing control sinks keep firing and a receiver
// acks every arriving copy (duplicates included, so retransmissions of
// already-delivered messages stop even when the first ack was lost).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "detection/messages.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::detection {

/// Ack for one reliably-sent control message. `msg_key` is the channel's
/// dedup key of the acked payload; `acked_kind` routes the ack to the
/// right channel when several coexist. `tag` authenticates the ack: a MAC
/// over (acked_kind, msg_key, acker, addressee) under the pairwise key of
/// acker and addressee, so only the genuine receiver of a message can
/// settle the sender's retransmission state — a third router spoofing
/// acks cannot make an exchange look delivered.
struct ControlAckPayload final : sim::ControlPayload {
  std::uint16_t acked_kind = 0;
  std::uint64_t msg_key = 0;
  util::NodeId acker = util::kInvalidNode;
  crypto::MacTag tag = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kKindControlAck; }
};

/// The ack MAC (exposed so tests can forge tags for the negative cases).
[[nodiscard]] crypto::MacTag ack_tag(const crypto::KeyRegistry& keys, std::uint16_t acked_kind,
                                     std::uint64_t msg_key, util::NodeId acker,
                                     util::NodeId addressee);

/// Retransmission policy of a ReliableChannel. Defaults are tuned for the
/// millisecond-scale links of the evaluation topologies; `enabled = false`
/// keeps legacy fire-and-forget behavior (and bit-identical traffic).
struct ReliableConfig {
  bool enabled = false;
  /// RTO before any RTT sample exists for a destination.
  util::Duration initial_rto = util::Duration::millis(40);
  /// Clamp for the adaptive RTO (SRTT + 4*RTTVAR).
  util::Duration min_rto = util::Duration::millis(10);
  util::Duration max_rto = util::Duration::millis(200);
  /// Multiplier applied to the RTO after each retransmission.
  double backoff = 2.0;
  /// Each armed timer is scaled by 1 + jitter*U(-1,1) (deterministic via
  /// the channel's seeded rng) to de-synchronize retry bursts.
  double jitter = 0.25;
  /// Retransmissions after the first send; exhausting the budget fires
  /// the FailureFn and abandons the message.
  std::size_t max_retries = 6;
  /// Simulated wire size of an ack packet (payload only, header extra).
  std::uint32_t ack_bytes = 48;
};

/// Canonical duplicate-suppression key for summary-shaped control
/// messages: (reporter, segment, round, kind).
[[nodiscard]] std::uint64_t summary_dedup_key(util::NodeId reporter,
                                              const routing::PathSegment& segment,
                                              std::int64_t round, std::uint16_t kind);

/// One reliable channel per control `kind`: tracks every send() until it
/// is acked, retransmitting with backoff, and acks/dedups at receivers.
/// Installed on every node, so hosts (chi reporters) participate too.
class ReliableChannel {
 public:
  /// How a message (and its ack) travels.
  enum class Via {
    kDirect,  ///< straight out the interface to an adjacent node (flooding;
              ///< needs no routes, bypasses the sender's forward filter)
    kRouted,  ///< through Router::originate / Host::send (end-to-end
              ///< exchanges; the sender's own forward filter applies)
  };

  /// Dedup/ack key of a payload; must be injective per distinct message.
  using KeyFn = std::function<std::uint64_t(const sim::ControlPayload&)>;
  /// Fires once per (node, key) on first delivery.
  using DeliveryFn =
      std::function<void(util::NodeId at, const sim::ControlPayload&, util::SimTime)>;
  /// Fires at the sender when the retry budget for a message is exhausted.
  using FailureFn = std::function<void(util::NodeId from, util::NodeId to,
                                       const sim::ControlPayload&, util::SimTime)>;

  ReliableChannel(sim::Network& net, const crypto::KeyRegistry& keys, std::uint16_t kind,
                  ReliableConfig config);

  void set_key_fn(KeyFn f) { key_fn_ = std::move(f); }
  void set_delivery_fn(DeliveryFn f) { delivery_fn_ = std::move(f); }
  void set_failure_fn(FailureFn f) { failure_fn_ = std::move(f); }

  /// Sends `payload` from `from` to `to`, retransmitting until acked or
  /// the retry budget runs out. A message with a key already in flight
  /// between the same pair is dropped as a duplicate send.
  void send(util::NodeId from, util::NodeId to,
            std::shared_ptr<const sim::ControlPayload> payload, std::uint32_t wire_bytes,
            Via via = Via::kRouted);

  /// Current retransmission timeout the channel would use from -> to.
  [[nodiscard]] util::Duration current_rto(util::NodeId from, util::NodeId to) const;

  /// Messages still awaiting an ack (0 = quiescent; tests assert no
  /// deadlocked state at the end of a run).
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }

  struct Stats {
    std::uint64_t messages = 0;       ///< distinct send() calls accepted
    std::uint64_t transmissions = 0;  ///< first sends + retransmissions
    std::uint64_t retransmits = 0;
    std::uint64_t failures = 0;       ///< retry budget exhausted
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;  ///< acks that settled a pending send
    std::uint64_t acks_rejected = 0;  ///< acks failing MAC verification
    std::uint64_t duplicates = 0;     ///< receiver-side duplicate payloads
    std::uint64_t payload_bytes = 0;  ///< wire bytes of all transmissions
    std::uint64_t ack_bytes = 0;      ///< wire bytes of all acks
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ReliableConfig& config() const { return config_; }
  [[nodiscard]] std::uint16_t control_kind() const { return kind_; }

 private:
  /// (sender, destination, message key).
  using PendingKey = std::tuple<util::NodeId, util::NodeId, std::uint64_t>;

  struct Pending {
    std::shared_ptr<const sim::ControlPayload> payload;
    std::uint32_t wire_bytes = 0;
    Via via = Via::kRouted;
    std::size_t attempts = 0;  ///< transmissions so far
    bool retransmitted = false;
    util::SimTime last_sent;
    util::Duration rto;
    sim::EventId timer = 0;
  };

  /// Jacobson/Karels estimator state for one (from, to) pair.
  struct RttState {
    bool valid = false;
    double srtt_s = 0.0;
    double rttvar_s = 0.0;
  };

  void transmit(const PendingKey& key, Pending& p);
  void arm_timer(const PendingKey& key, Pending& p);
  void on_timeout(const PendingKey& key);
  void on_message(util::NodeId at, const sim::Packet& p);
  void on_ack(util::NodeId at, const ControlAckPayload& ack);
  /// Puts a control packet on the wire from -> to, direct if adjacent.
  void emit(util::NodeId from, util::NodeId to,
            std::shared_ptr<const sim::ControlPayload> payload, std::uint32_t wire_bytes,
            Via via);
  void sample_rtt(util::NodeId from, util::NodeId to, util::Duration sample);

  static std::uint64_t pair_key(util::NodeId from, util::NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  std::uint16_t kind_;
  ReliableConfig config_;
  util::Rng rng_;
  KeyFn key_fn_;
  DeliveryFn delivery_fn_;
  FailureFn failure_fn_;
  std::map<PendingKey, Pending> pending_;
  std::map<std::uint64_t, RttState> rtt_;
  std::vector<std::set<std::uint64_t>> seen_;  ///< receiver dedup, per node
  Stats stats_;
};

}  // namespace fatih::detection
