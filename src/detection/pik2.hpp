// Protocol Pi(k+2) (dissertation §5.2, Fig. 5.3): complete, accurate
// failure detection with precision k+2, cheap enough for practical
// deployment — the protocol the Fatih prototype implements.
//
// Each router monitors the x-path-segments (3 <= x <= k+2) for which it is
// an END router. Per round, the two ends of each segment exchange signed
// summaries through the segment itself; a failed exchange (timeout) or a
// failed TV evaluation makes each end suspect the whole segment. Interior
// routers do nothing, which is what makes the overhead practical
// (Fig. 5.4), and subsampling of monitored packets is supported because
// interior routers never learn the sampling pattern (§5.2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "detection/byzantine.hpp"
#include "detection/reliable.hpp"
#include "detection/summary_gen.hpp"
#include "detection/tv.hpp"
#include "detection/types.hpp"
#include "util/flat_map.hpp"

namespace fatih::detection {

class ConvictionEngine;

/// How summaries travel between the segment ends.
enum class SummaryCompression {
  kFull,       ///< ship every fingerprint (conservation of order capable)
  kReconcile,  ///< ship Appendix-A characteristic-polynomial evaluations:
               ///< O(d) field elements; exact content diff up to the bound
  kBloom,      ///< ship a Bloom digest (§2.4.1): ~1.25 B/packet, the
               ///< difference size is estimated rather than exact
};

struct Pik2Config {
  RoundClock clock;
  std::size_t k = 1;
  util::Duration collect_settle = util::Duration::millis(300);
  /// Timeout mu for the summary exchange (§5.2: "within mu timeout interval").
  util::Duration exchange_timeout = util::Duration::millis(500);
  TvPolicy policy = TvPolicy::kContent;
  TvThresholds thresholds;
  /// Fingerprint sampling: keep fp iff (fp & 0xFF) < sample_keep_per_256.
  std::uint32_t sample_keep_per_256 = 256;
  SummaryCompression compression = SummaryCompression::kFull;
  /// Reconciliation difference bound (kReconcile); a diff beyond it is by
  /// itself a TV failure, so set it above the loss thresholds.
  std::size_t reconcile_bound = 32;
  /// Bloom sizing (kBloom): bits per recorded packet, and hash count.
  std::size_t bloom_bits_per_packet = 10;
  std::size_t bloom_hashes = 4;
  /// When enabled, the end-to-end summary exchange runs over the reliable
  /// ack/retransmit channel (duplicate-suppressed on (reporter, segment,
  /// round, kind)); exchange_timeout must cover the retry schedule. A
  /// send whose retry budget runs out raises "exchange-undeliverable" at
  /// the sender immediately instead of waiting for the timeout.
  ReliableConfig reliable;
  std::int64_t rounds = 0;  ///< 0 = run until simulation ends
};

class Pik2Engine {
 public:
  Pik2Engine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
             const std::vector<util::NodeId>& terminals, Pik2Config config);

  void start();

  /// Retires the engine: stops the round scheduler and disables its
  /// summary generators. Registered taps remain (harmless no-ops), so the
  /// object must stay alive, parked.
  void stop();

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

  /// Protocol-fault injection, as in Pi2Engine.
  using ReportMutator = std::function<bool(SegmentSummary&)>;
  void set_report_mutator(util::NodeId r, ReportMutator m) { mutators_[r] = std::move(m); }

  /// Adversarial entry: signs `summary` with `from`'s own key and sends it
  /// to the far end of its segment — a second, conflicting summary for an
  /// already-exchanged (segment, round) is an equivocation the receiver
  /// can prove with the two envelopes.
  void inject_summary(util::NodeId from, const SegmentSummary& summary);

  /// Optional conviction layer (see Pi2Engine::set_conviction_engine).
  void set_conviction_engine(ConvictionEngine* c) { conviction_ = c; }

  /// Control-plane verification counters (rejected exchanges, replays...).
  [[nodiscard]] const ByzantineStats& guard_stats() const { return guard_.stats(); }

  /// Segments with r as an end (its Pr).
  [[nodiscard]] std::vector<routing::PathSegment> monitored_by(util::NodeId r) const;

  /// Total control bytes shipped by the exchange so far (overhead bench).
  [[nodiscard]] std::uint64_t exchange_bytes() const { return exchange_bytes_; }

  /// Churn-awareness: (segment, round) evaluations skipped because the
  /// round straddled a route change on the exchange segment. Never counted
  /// as suspicions.
  [[nodiscard]] std::uint64_t rounds_invalidated() const {
    return counters_.rounds_invalidated;
  }
  /// Uniform engine introspection (same struct across pi2/pik2/chi).
  [[nodiscard]] const DetectorCounters& counters() const { return counters_; }

  /// FNV fingerprint of the engine's evolving round state (watermark,
  /// counters, store sizes, exchange bytes, raised suspicions), for
  /// checkpoint digests.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// The reliable transport, or null when `reliable.enabled` is off.
  [[nodiscard]] const ReliableChannel* channel() const { return channel_.get(); }

 private:
  void run_round(std::int64_t round);
  void exchange(std::int64_t round);
  void evaluate(std::int64_t round);
  void on_summary(util::NodeId at, const SegmentSummaryPayload& payload);
  void suspect(util::NodeId reporter, const routing::PathSegment& segment, std::int64_t round,
               const char* cause, double confidence = 1.0);
  /// True iff the round's verdict on `seg` would be contaminated by a
  /// route change (round interval through `now` overlaps a transition
  /// affecting the segment, or the segment is off the live path).
  [[nodiscard]] bool churn_invalidated(const routing::PathSegment& seg, std::int64_t round) const;

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  const PathCache& paths_;
  Pik2Config config_;
  ControlGuard guard_;
  ConvictionEngine* conviction_ = nullptr;
  std::int64_t closed_round_ = -1;  ///< highest evaluated round (watermark)
  DetectorCounters counters_;
  std::unique_ptr<ReliableChannel> channel_;  ///< null unless reliable.enabled
  std::vector<std::unique_ptr<SummaryGenerator>> generators_;
  std::vector<routing::PathSegment> segments_;
  // Local copy each end keeps of what it sent (for the TV evaluation).
  // Flat sorted-vector stores: std::map iteration order, dense lookups.
  // The own side never ships, so it keeps only what evaluation reads —
  // counters + content fingerprints — not a full SegmentSummary (the key
  // already carries reporter/segment/round, and the compressed forms only
  // exist on the peer side).
  struct OwnRecord {
    validation::CounterSummary counters;
    std::vector<validation::Fingerprint> content;  ///< forwarding order
  };
  util::FlatMap<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>, OwnRecord>
      own_;
  // Peer summaries received, keyed by (receiver, segment, round). First
  // verified summary wins; a later conflicting one is an equivocation.
  util::FlatMap<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>, SegmentSummary>
      peer_;
  // The envelope backing each peer_ entry, kept so a conflicting second
  // summary can be filed as a two-envelope equivocation proof.
  util::FlatMap<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>,
                crypto::SignedEnvelope>
      peer_envelope_;
  util::FlatSet<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>> proof_filed_;
  util::FlatMap<util::NodeId, ReportMutator> mutators_;
  std::uint64_t exchange_bytes_ = 0;
  bool stopped_ = false;
  std::vector<Suspicion> suspicions_;
  util::FlatSet<std::tuple<util::NodeId, routing::PathSegment, std::int64_t>> raised_;
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
