#include "detection/reliable.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/mac.hpp"
#include "crypto/siphash.hpp"

namespace fatih::detection {

namespace {
/// Channel rng stream tag; combined with the network seed and the channel
/// kind so coexisting channels draw uncorrelated jitter. Deliberately NOT
/// forked from the network rng: constructing a channel must not perturb
/// the rng stream existing experiments consume.
constexpr std::uint64_t kChannelSeedTag = 0x52454C4943484E4CULL;  // "RELICHNL"
}  // namespace

std::uint64_t summary_dedup_key(util::NodeId reporter, const routing::PathSegment& segment,
                                std::int64_t round, std::uint16_t kind) {
  constexpr crypto::SipKey kKey{0x72656C6961626C65ULL, 0x6465647570206B31ULL};
  std::vector<std::byte> bytes;
  crypto::append_bytes(bytes, reporter);
  const auto count = static_cast<std::uint32_t>(segment.nodes().size());
  crypto::append_bytes(bytes, count);
  for (const util::NodeId n : segment.nodes()) crypto::append_bytes(bytes, n);
  crypto::append_bytes(bytes, round);
  crypto::append_bytes(bytes, kind);
  return crypto::siphash24(kKey, bytes.data(), bytes.size());
}

crypto::MacTag ack_tag(const crypto::KeyRegistry& keys, std::uint16_t acked_kind,
                       std::uint64_t msg_key, util::NodeId acker, util::NodeId addressee) {
  std::vector<std::byte> bytes;
  crypto::append_bytes(bytes, acked_kind);
  crypto::append_bytes(bytes, msg_key);
  crypto::append_bytes(bytes, acker);
  crypto::append_bytes(bytes, addressee);
  return crypto::compute_mac(keys.pairwise_key(acker, addressee), bytes);
}

ReliableChannel::ReliableChannel(sim::Network& net, const crypto::KeyRegistry& keys,
                                 std::uint16_t kind, ReliableConfig config)
    : net_(net), keys_(keys), kind_(kind), config_(config),
      rng_(net.seed() ^ kChannelSeedTag ^ kind) {
  seen_.resize(net_.node_count());
  for (util::NodeId n = 0; n < net_.node_count(); ++n) {
    net_.node(n).add_control_sink(
        [this, n](const sim::Packet& p, util::NodeId /*prev*/, util::SimTime) {
          if (p.control == nullptr) return;
          if (p.control->kind() == kind_) {
            on_message(n, p);
          } else if (p.control->kind() == kKindControlAck) {
            const auto& ack = static_cast<const ControlAckPayload&>(*p.control);
            if (ack.acked_kind == kind_) on_ack(n, ack);
          }
        });
  }
}

void ReliableChannel::send(util::NodeId from, util::NodeId to,
                           std::shared_ptr<const sim::ControlPayload> payload,
                           std::uint32_t wire_bytes, Via via) {
  assert(key_fn_ != nullptr);
  const PendingKey key{from, to, key_fn_(*payload)};
  auto [it, inserted] = pending_.try_emplace(key);
  if (!inserted) return;  // identical message already in flight
  Pending& p = it->second;
  p.payload = std::move(payload);
  p.wire_bytes = wire_bytes;
  p.via = via;
  p.rto = current_rto(from, to);
  ++stats_.messages;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   exchange(net_.sim().now(), obs::TraceSource::kReliable,
                            obs::TraceCode::kExchangeSend, from, to, -1, std::get<2>(key)));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.messages").inc());
  transmit(key, p);
  arm_timer(key, p);
}

util::Duration ReliableChannel::current_rto(util::NodeId from, util::NodeId to) const {
  const auto it = rtt_.find(pair_key(from, to));
  if (it == rtt_.end() || !it->second.valid) return config_.initial_rto;
  const double rto_s = it->second.srtt_s + 4.0 * it->second.rttvar_s;
  return std::clamp(util::Duration::from_seconds(rto_s), config_.min_rto, config_.max_rto);
}

void ReliableChannel::transmit(const PendingKey& key, Pending& p) {
  ++p.attempts;
  p.last_sent = net_.sim().now();
  ++stats_.transmissions;
  FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.transmissions").inc());
  stats_.payload_bytes += sim::kHeaderBytes + p.wire_bytes;
  emit(std::get<0>(key), std::get<1>(key), p.payload, p.wire_bytes, p.via);
}

void ReliableChannel::arm_timer(const PendingKey& key, Pending& p) {
  const double scale = 1.0 + config_.jitter * (2.0 * rng_.next_double() - 1.0);
  const auto delay = p.rto.scaled(scale);
  p.timer = net_.sim().schedule_in(delay, [this, key] { on_timeout(key); });
}

void ReliableChannel::on_timeout(const PendingKey& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;  // acked; stale timer
  Pending& p = it->second;
  if (p.attempts > config_.max_retries) {
    ++stats_.failures;
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     exchange(net_.sim().now(), obs::TraceSource::kReliable,
                              obs::TraceCode::kExchangeFailed, std::get<0>(key),
                              std::get<1>(key), -1, std::get<2>(key)));
    FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.failures").inc());
    auto payload = p.payload;
    pending_.erase(it);
    if (failure_fn_) {
      failure_fn_(std::get<0>(key), std::get<1>(key), *payload, net_.sim().now());
    }
    return;
  }
  p.retransmitted = true;
  ++stats_.retransmits;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   exchange(net_.sim().now(), obs::TraceSource::kReliable,
                            obs::TraceCode::kExchangeRetransmit, std::get<0>(key),
                            std::get<1>(key), -1, p.attempts));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.retransmits").inc());
  p.rto = std::min(p.rto.scaled(config_.backoff), config_.max_rto);
  transmit(key, p);
  arm_timer(key, p);
}

void ReliableChannel::on_message(util::NodeId at, const sim::Packet& p) {
  const std::uint64_t key = key_fn_(*p.control);
  // Ack every arriving copy (duplicates included): a lost ack otherwise
  // leaves the sender retransmitting an already-delivered message forever.
  auto ack = std::make_shared<ControlAckPayload>();
  ack->acked_kind = kind_;
  ack->msg_key = key;
  ack->acker = at;
  ack->tag = ack_tag(keys_, kind_, key, at, p.hdr.src);
  ++stats_.acks_sent;
  FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.acks_sent").inc());
  stats_.ack_bytes += sim::kHeaderBytes + config_.ack_bytes;
  emit(at, p.hdr.src, std::move(ack), config_.ack_bytes, Via::kRouted);
  if (!seen_[at].insert(key).second) {
    ++stats_.duplicates;
    FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.duplicates").inc());
    return;
  }
  if (delivery_fn_) delivery_fn_(at, *p.control, net_.sim().now());
}

void ReliableChannel::on_ack(util::NodeId at, const ControlAckPayload& ack) {
  // Mandatory ack authentication: the tag must verify under the pairwise
  // key of the claimed acker and this node, so a spoofed ack (forged
  // acker, or a replayed tag spliced onto a different msg_key) can never
  // settle an exchange the forger was not a party to.
  if (ack.tag != ack_tag(keys_, kind_, ack.msg_key, ack.acker, at)) {
    ++stats_.acks_rejected;
    FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.acks_rejected").inc());
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     byzantine(net_.sim().now(), obs::TraceSource::kReliable,
                               obs::TraceCode::kControlRejected, at, ack.acker, -1,
                               ack.msg_key, "ack-bad-mac"));
    return;
  }
  const auto it = pending_.find({at, ack.acker, ack.msg_key});
  if (it == pending_.end()) return;  // duplicate or stale ack
  Pending& p = it->second;
  ++stats_.acks_received;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   exchange(net_.sim().now(), obs::TraceSource::kReliable,
                            obs::TraceCode::kExchangeAck, at, ack.acker, -1, ack.msg_key));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("reliable.acks_received").inc());
  // Karn's rule: only first-transmission acks yield an unambiguous sample.
  if (!p.retransmitted) sample_rtt(at, ack.acker, net_.sim().now() - p.last_sent);
  net_.sim().cancel(p.timer);
  pending_.erase(it);
}

void ReliableChannel::emit(util::NodeId from, util::NodeId to,
                           std::shared_ptr<const sim::ControlPayload> payload,
                           std::uint32_t wire_bytes, Via via) {
  sim::PacketHeader hdr;
  hdr.src = from;
  hdr.dst = to;
  hdr.proto = sim::Protocol::kControl;
  sim::Packet pkt = net_.make_packet(hdr, wire_bytes);
  pkt.control = std::move(payload);
  sim::Node& node = net_.node(from);
  if (via == Via::kDirect) {
    auto* iface = node.interface_to(to);
    assert(iface != nullptr);
    iface->send(pkt);
    return;
  }
  // Routed: acks and end-to-end exchanges follow the tables; prefer the
  // adjacent interface when no route exists (flood acks between neighbors
  // in networks that never installed routes).
  if (net_.is_router(from)) {
    auto& router = net_.router(from);
    if (!router.lookup(from, to).has_value()) {
      if (auto* iface = router.interface_to(to); iface != nullptr) {
        iface->send(pkt);
        return;
      }
    }
    router.originate(pkt);
  } else {
    net_.host(from).send(pkt);
  }
}

void ReliableChannel::sample_rtt(util::NodeId from, util::NodeId to, util::Duration sample) {
  RttState& st = rtt_[pair_key(from, to)];
  const double s = sample.to_seconds();
  if (!st.valid) {
    st.valid = true;
    st.srtt_s = s;
    st.rttvar_s = s / 2.0;
    return;
  }
  const double err = s - st.srtt_s;
  st.srtt_s += err / 8.0;
  st.rttvar_s += (std::abs(err) - st.rttvar_s) / 4.0;
}

}  // namespace fatih::detection
