#include "detection/evidence.hpp"

#include "crypto/siphash.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace fatih::detection {

namespace {
constexpr const char* kComponent = "conviction";

std::uint64_t payload_key(const sim::ControlPayload& payload) {
  const auto& p = static_cast<const AccusationPayload&>(payload);
  // Key on the full signed envelope so differently-signed copies of the
  // same accusation each flood (and each get judged).
  constexpr crypto::SipKey kKey{0x4143435553453036ULL, 0x636F6E7669637431ULL};
  auto bytes = p.envelope.payload;
  crypto::append_bytes(bytes, p.envelope.tag);
  crypto::append_bytes(bytes, p.envelope.signer);
  return crypto::siphash24(kKey, bytes.data(), bytes.size());
}
}  // namespace

bool valid_equivocation_proof(const crypto::KeyRegistry& keys,
                              std::span<const crypto::SignedEnvelope> evidence,
                              util::NodeId* culprit) {
  if (evidence.size() != 2) return false;
  const crypto::SignedEnvelope& a = evidence[0];
  const crypto::SignedEnvelope& b = evidence[1];
  if (a.signer != b.signer) return false;
  if (!crypto::verify(keys, a) || !crypto::verify(keys, b)) return false;
  if (a.payload == b.payload) return false;  // same statement twice proves nothing
  // Both payloads must decode to the same statement key: the same reporter
  // (== the signer) talking about the same segment/queue in the same round.
  if (auto sa = SegmentSummary::from_bytes(a.payload)) {
    const auto sb = SegmentSummary::from_bytes(b.payload);
    if (!sb.has_value()) return false;
    if (sa->reporter != a.signer || sb->reporter != b.signer) return false;
    if (sa->segment != sb->segment || sa->round != sb->round) return false;
    if (culprit != nullptr) *culprit = a.signer;
    return true;
  }
  if (auto ra = ChiReport::from_bytes(a.payload)) {
    const auto rb = ChiReport::from_bytes(b.payload);
    if (!rb.has_value()) return false;
    if (ra->reporter != a.signer || rb->reporter != b.signer) return false;
    if (ra->queue_owner != rb->queue_owner || ra->queue_peer != rb->queue_peer ||
        ra->round != rb->round || ra->part != rb->part) {
      return false;
    }
    if (culprit != nullptr) *culprit = a.signer;
    return true;
  }
  return false;
}

ConvictionEngine::ConvictionEngine(sim::Network& net, const crypto::KeyRegistry& keys,
                                   ConvictionConfig config)
    : net_(net),
      keys_(keys),
      config_(config),
      guard_(net, keys, obs::TraceSource::kConviction, "conviction") {
  flood_ = std::make_unique<FloodService>(net_, kKindAccusation);
  flood_->set_key_fn(payload_key);
  flood_->set_validate_fn([this](util::NodeId, const sim::ControlPayload& payload) {
    const auto& p = static_cast<const AccusationPayload&>(payload);
    std::optional<Accusation> decoded;
    return guard_.check_accusation(p.envelope, decoded) == ControlVerdict::kOk;
  });
  flood_->set_invalid_fn([this](util::NodeId at, util::NodeId prev,
                                const sim::ControlPayload& payload, util::SimTime) {
    const auto& p = static_cast<const AccusationPayload&>(payload);
    std::optional<Accusation> decoded;
    guard_.reject(at, prev, -1, guard_.check_accusation(p.envelope, decoded), nullptr);
  });
  flood_->set_delivery_fn(
      [this](util::NodeId, const sim::ControlPayload& payload, util::SimTime) {
        const auto& p = static_cast<const AccusationPayload&>(payload);
        std::optional<Accusation> decoded;
        if (guard_.check_accusation(p.envelope, decoded) != ControlVerdict::kOk) return;
        // The ledger is evaluated once per unique accusation, at its first
        // delivery (the flood delivers everywhere; replicas would agree).
        if (!processed_.insert(payload_key(payload)).second) return;
        guard_.accept();
        on_accusation(*decoded);
      });
}

void ConvictionEngine::accuse(util::NodeId accuser, std::uint8_t detector,
                              const routing::PathSegment& accused, std::int64_t round,
                              const std::string& cause,
                              std::vector<crypto::SignedEnvelope> evidence) {
  Accusation acc;
  acc.accuser = accuser;
  acc.detector = detector;
  acc.accused = accused;
  acc.round = round;
  acc.cause = cause.substr(0, Accusation::kMaxCauseBytes);
  acc.evidence = std::move(evidence);
  crypto::SignedEnvelope env = crypto::sign(keys_, accuser, acc.to_bytes());
  originate_raw(accuser, acc, std::move(env));
}

void ConvictionEngine::originate_raw(util::NodeId from, const Accusation& acc,
                                     crypto::SignedEnvelope env) {
  auto payload = std::make_shared<AccusationPayload>();
  payload->accusation = acc;
  payload->envelope = std::move(env);
  const std::uint32_t bytes = acc.wire_bytes();
  flood_->originate(from, std::move(payload), bytes);
}

void ConvictionEngine::on_accusation(const Accusation& acc) {
  ++accusations_accepted_;
  [[maybe_unused]] const util::NodeId front =
      acc.accused.empty() ? util::kInvalidNode : acc.accused.front();
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   byzantine(net_.sim().now(), obs::TraceSource::kConviction,
                             obs::TraceCode::kAccusation, acc.accuser, front, acc.round,
                             acc.accused.length(), acc.cause.c_str()));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.accusations").inc());
  if (!acc.evidence.empty()) {
    util::NodeId culprit = util::kInvalidNode;
    if (valid_equivocation_proof(keys_, acc.evidence, &culprit)) {
      FATIH_TRACE_EMIT(net_.sim().trace(),
                       byzantine(net_.sim().now(), obs::TraceSource::kConviction,
                                 obs::TraceCode::kEquivocationProven, acc.accuser, culprit,
                                 acc.round, 0, acc.cause.c_str()));
      FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.equivocation_proofs").inc());
      convict(culprit, acc.round, "equivocation-proof", {acc.accuser});
      return;
    }
    // A well-signed accusation whose attached proof does not check out is
    // itself convicting evidence — against its maker.
    FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.forged_evidence").inc());
    convict(acc.accuser, acc.round, "forged-evidence", {});
    return;
  }
  // Evidence-free witness vote. Precision-1 only — pair accusations are
  // inherently ambiguous and never convict (sandwich frame, see header).
  if (acc.accused.length() != 1) return;
  const util::NodeId target = acc.accused.front();
  if (target == acc.accuser) return;  // self-votes don't count
  if (convicted_.contains(target)) return;
  auto& voters = votes_[target];
  if (!voters.insert(acc.accuser).second) return;  // one vote per accuser
  FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.witness_votes").inc());
  if (voters.size() >= config_.witness_quorum) {
    convict(target, acc.round, "witness-quorum",
            std::vector<util::NodeId>(voters.begin(), voters.end()));
  }
}

void ConvictionEngine::convict(util::NodeId who, std::int64_t round, const char* basis,
                               std::vector<util::NodeId> witnesses) {
  if (who == util::kInvalidNode) return;
  if (!convicted_.insert(who).second) return;  // convicted once, stays convicted
  Conviction c;
  c.accused = who;
  c.round = round;
  c.basis = basis;
  c.witnesses = std::move(witnesses);
  util::log(util::LogLevel::kInfo, kComponent, "convicted %s (%s, round %lld)",
            util::node_name(who).c_str(), basis, static_cast<long long>(round));
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   byzantine(net_.sim().now(), obs::TraceSource::kConviction,
                             obs::TraceCode::kConviction, who, util::kInvalidNode, round,
                             c.witnesses.size(), basis));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.convictions").inc());
  convictions_.push_back(std::move(c));
  if (handler_) handler_(convictions_.back());
}

}  // namespace fatih::detection
