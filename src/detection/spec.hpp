// Specification checkers: a-Accuracy and a-Completeness (dissertation
// §4.2.2), evaluated against simulator ground truth.
//
//   * Accuracy: whenever a correct router suspects (pi, tau), |pi| <= a
//     and some router in pi was faulty during tau.
//   * FC-Completeness: whenever a router is traffic-faulty, all correct
//     routers eventually suspect a segment containing a router
//     fault-connected to it.
//
// Tests and benches register the ground truth (which routers are faulty
// and when) and feed every suspicion through these checkers.
#pragma once

#include <set>
#include <vector>

#include "detection/types.hpp"

namespace fatih::detection {

/// Ground truth about adversary placement.
class GroundTruth {
 public:
  /// Declares `r` traffic-faulty from `since` (until forever).
  void mark_traffic_faulty(util::NodeId r, util::SimTime since);
  /// Declares `r` protocol-faulty from `since`.
  void mark_protocol_faulty(util::NodeId r, util::SimTime since);
  /// Declares a churn window: from a topology fault until the routing
  /// fabric re-stabilized (typically from ChurnSchedule::churn_intervals).
  /// Suspicions are NEVER excused by churn — accuracy must hold throughout
  /// — but violations overlapping a window are attributed to it so tests
  /// can assert reconvergence produced zero false accusations.
  void mark_churn(const util::TimeInterval& window);

  [[nodiscard]] bool is_faulty(util::NodeId r, const util::TimeInterval& during) const;
  [[nodiscard]] bool is_faulty_ever(util::NodeId r) const;
  [[nodiscard]] bool is_traffic_faulty_ever(util::NodeId r) const;
  [[nodiscard]] std::vector<util::NodeId> faulty_routers() const;
  [[nodiscard]] const std::vector<util::TimeInterval>& churn_intervals() const {
    return churn_;
  }
  /// True iff `during` overlaps any declared churn window.
  [[nodiscard]] bool overlaps_churn(const util::TimeInterval& during) const;

 private:
  struct Mark {
    util::NodeId r;
    util::SimTime since;
  };
  std::vector<Mark> traffic_;
  std::vector<Mark> protocol_;
  std::vector<util::TimeInterval> churn_;
};

/// Result of checking a batch of suspicions against ground truth.
struct SpecReport {
  std::size_t suspicions = 0;
  std::size_t accurate = 0;    ///< contain a faulty router, length within precision
  std::size_t violations = 0;  ///< suspicions naming only correct routers
  std::size_t oversized = 0;   ///< suspicions longer than the precision bound
  /// Subset of `violations` whose interval overlaps a declared churn
  /// window: false accusations born of reconvergence. A churn-resilient
  /// detector keeps this zero (the rounds are invalidated instead).
  std::size_t churn_violations = 0;
  [[nodiscard]] bool accuracy_holds() const { return violations == 0 && oversized == 0; }
};

/// Checks a-Accuracy over suspicions raised by CORRECT reporters (faulty
/// routers are allowed to report nonsense; the response layer discounts
/// them, §4.2.2).
[[nodiscard]] SpecReport check_accuracy(const std::vector<Suspicion>& suspicions,
                                        const GroundTruth& truth, std::size_t precision);

/// Checks completeness for one traffic-faulty router `f`: does some
/// suspicion (by each of `observers` if strong, any if weak) contain a
/// router fault-connected to `f`? With at most one faulty router per
/// neighborhood, fault-connected reduces to "the segment contains f".
[[nodiscard]] bool check_completeness_for(const std::vector<Suspicion>& suspicions,
                                          util::NodeId faulty);

/// Completeness restricted to suspicions whose interval starts at or after
/// `after`: asserts detection RESUMES once the paths re-stabilize
/// following churn (invalidated rounds do not satisfy completeness; the
/// rounds after them must).
[[nodiscard]] bool check_completeness_for_after(const std::vector<Suspicion>& suspicions,
                                                util::NodeId faulty, util::SimTime after);

}  // namespace fatih::detection
