#include "detection/watchers.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fatih::detection {

namespace {
constexpr const char* kComponent = "watchers";

WatchersClass classify(const sim::Packet& p, util::NodeId forwarder, util::NodeId link_peer) {
  if (p.hdr.src == forwarder) return WatchersClass::kSourced;
  if (p.hdr.dst == link_peer) return WatchersClass::kDestined;
  return WatchersClass::kTransit;
}
}  // namespace

WatchersEngine::WatchersEngine(sim::Network& net, const PathCache& paths, WatchersConfig config)
    : net_(net), paths_(paths), config_(config) {
  live_.resize(net_.node_count());
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    if (!net_.is_router(r)) continue;
    auto& router = net_.router(r);
    router.add_forward_tap(
        [this, r](const sim::Packet& p, util::NodeId, std::size_t out_iface, util::SimTime) {
          if (p.is_control()) return;
          const util::NodeId y = net_.router(r).interface(out_iface).peer();
          const WatchersClass cls = classify(p, r, y);
          const util::NodeId d = cls == WatchersClass::kDestined ? y : p.hdr.dst;
          auto& snap = live_[r][config_.clock.round_of(p.created)];
          snap.router = r;
          ++snap.send[{y, cls, d}];
        });
    router.add_receive_tap([this, r](const sim::Packet& p, util::NodeId prev, util::SimTime) {
      if (p.is_control() || prev == r) return;
      // Mirror of prev's send counter for the link (prev -> r): classify
      // from prev's point of view.
      const WatchersClass as_sender = p.hdr.src == prev  ? WatchersClass::kSourced
                                      : p.hdr.dst == r   ? WatchersClass::kDestined
                                                         : WatchersClass::kTransit;
      const util::NodeId d = as_sender == WatchersClass::kDestined ? r : p.hdr.dst;
      auto& snap = live_[r][config_.clock.round_of(p.created)];
      snap.router = r;
      ++snap.recv[{prev, as_sender, d}];
      // Misroute counter: prev should not have handed us this packet if the
      // stable route at prev points elsewhere.
      if (p.hdr.dst != r) {
        const auto expected = paths_.next_hop_after(p.hdr.src, p.hdr.dst, prev);
        if (expected != util::kInvalidNode && expected != r) {
          ++live_[r][config_.clock.round_of(p.created)].misroutes[prev];
        }
      }
    });
  }
}

void WatchersEngine::start() {
  const auto first = config_.clock.interval_of(0).end + config_.settle;
  net_.sim().schedule_at(first, [this] { evaluate(0); });
}

std::size_t WatchersEngine::counters_at(util::NodeId r) const {
  std::size_t total = 0;
  for (const auto& [round, snap] : live_.at(r)) {
    total = std::max(total, snap.send.size() + snap.recv.size() + snap.misroutes.size());
  }
  return total;
}

void WatchersEngine::evaluate(std::int64_t round) {
  // "Flood" this round's snapshots and apply lying mutators.
  std::vector<WatchersSnapshot> snaps(net_.node_count());
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    snaps[r].router = r;
    auto it = live_[r].find(round);
    if (it != live_[r].end()) {
      snaps[r] = it->second;
      snaps[r].router = r;
      live_[r].erase(it);
    }
  }
  for (auto& [r, mut] : mutators_) mut(snaps[r]);

  // Per-link comparison helper: x's send counters toward y vs y's recv
  // counters from x.
  const auto link_consistent = [&](util::NodeId x, util::NodeId y) {
    const auto& sx = snaps[x].send;
    const auto& ry = snaps[y].recv;
    for (const auto& [key, count] : sx) {
      if (std::get<0>(key) != y) continue;
      const auto rkey = std::make_tuple(x, std::get<1>(key), std::get<2>(key));
      const auto it = ry.find(rkey);
      const std::uint64_t rc = it == ry.end() ? 0 : it->second;
      if (rc != count) return false;
    }
    for (const auto& [key, count] : ry) {
      if (std::get<0>(key) != x) continue;
      const auto skey = std::make_tuple(y, std::get<1>(key), std::get<2>(key));
      const auto it = sx.find(skey);
      const std::uint64_t sc = it == sx.end() ? 0 : it->second;
      if (sc != count) return false;
    }
    return true;
  };

  // Transit inflow/outflow of router b according to the flooded snapshots.
  const auto cof_gap = [&](util::NodeId b) -> std::uint64_t {
    std::uint64_t inflow = 0;
    std::uint64_t outflow = 0;
    for (util::NodeId c = 0; c < net_.node_count(); ++c) {
      if (!net_.is_router(c)) continue;
      for (const auto& [key, count] : snaps[c].send) {
        if (std::get<0>(key) != b) continue;
        // Traffic into b that b must forward again: everything except
        // traffic terminating at b.
        if (std::get<1>(key) == WatchersClass::kDestined) continue;
        if (std::get<2>(key) == b) continue;
        inflow += count;
      }
    }
    for (const auto& [key, count] : snaps[b].send) {
      if (std::get<1>(key) == WatchersClass::kSourced) continue;  // b's own traffic
      outflow += count;
    }
    return inflow > outflow ? inflow - outflow : outflow - inflow;
  };

  // Phase 1+2 at each correct router a; collect announcements first so the
  // fixed variant can check for them.
  struct Announcement {
    util::NodeId reporter;
    routing::PathSegment segment;
  };
  std::vector<Announcement> announcements;

  for (util::NodeId a = 0; a < net_.node_count(); ++a) {
    if (!net_.is_router(a) || silent_.contains(a)) continue;
    auto& node = net_.node(a);
    for (std::size_t i = 0; i < node.interface_count(); ++i) {
      const util::NodeId b = node.interface(i).peer();
      if (!net_.is_router(b)) continue;
      // Direct validation of my own links.
      if (!link_consistent(a, b) || !link_consistent(b, a)) {
        announcements.push_back({a, routing::PathSegment{a, b}});
        continue;
      }
      // Misroute counter is decisive on its own.
      if (auto it = snaps[a].misroutes.find(b);
          it != snaps[a].misroutes.end() && it->second > 0) {
        announcements.push_back({a, routing::PathSegment{a, b}});
        continue;
      }
      // §3.1: if any of b's other links shows inconsistent counters, "a
      // knows that at least one of b and c is faulty, and so a does
      // nothing further with b" — the CoF test is skipped. This skip is
      // exactly what consorting routers exploit (the flaw); the fixed
      // variant compensates in phase 2 below.
      bool all_links_validated = true;
      auto& bnode = net_.node(b);
      for (std::size_t j = 0; j < bnode.interface_count() && all_links_validated; ++j) {
        const util::NodeId c = bnode.interface(j).peer();
        if (c == a || !net_.is_router(c)) continue;
        if (!link_consistent(b, c) || !link_consistent(c, b)) all_links_validated = false;
      }
      if (!all_links_validated) continue;
      // CoF test for the validated neighbor.
      if (cof_gap(b) > config_.flow_threshold) {
        announcements.push_back({a, routing::PathSegment{b}});
      }
    }
  }

  for (const auto& ann : announcements) {
    suspect(ann.reporter, ann.segment, round, "watchers");
  }

  if (config_.fixed) {
    // The fix: every remote link inconsistency must be matched by an
    // announcement from one of its ends; silence implicates the adjacent
    // neighbor of each observer.
    const auto announced = [&](util::NodeId x, util::NodeId y) {
      return std::any_of(announcements.begin(), announcements.end(), [&](const Announcement& n) {
        return (n.reporter == x || n.reporter == y) && n.segment.contains(x) &&
               n.segment.contains(y);
      });
    };
    for (util::NodeId a = 0; a < net_.node_count(); ++a) {
      if (!net_.is_router(a) || silent_.contains(a)) continue;
      auto& node = net_.node(a);
      for (std::size_t i = 0; i < node.interface_count(); ++i) {
        const util::NodeId b = node.interface(i).peer();
        if (!net_.is_router(b)) continue;
        auto& bnode = net_.node(b);
        for (std::size_t j = 0; j < bnode.interface_count(); ++j) {
          const util::NodeId c = bnode.interface(j).peer();
          if (c == a || !net_.is_router(c)) continue;
          if (link_consistent(b, c) && link_consistent(c, b)) continue;
          if (announced(b, c)) continue;
          suspect(a, routing::PathSegment{a, b}, round, "watchers-fix");
        }
      }
    }
  }

  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.settle;
    net_.sim().schedule_at(next, [this, round] { evaluate(round + 1); });
  }
}

void WatchersEngine::suspect(util::NodeId reporter, routing::PathSegment seg, std::int64_t round,
                             const char* cause) {
  if (!raised_.insert({reporter, seg, round}).second) return;
  Suspicion s;
  s.reporter = reporter;
  s.segment = std::move(seg);
  s.interval = config_.clock.interval_of(round);
  s.cause = cause;
  util::log(util::LogLevel::kInfo, kComponent, "%s", s.to_string().c_str());
  suspicions_.push_back(s);
  if (handler_) handler_(suspicions_.back());
}

}  // namespace fatih::detection
