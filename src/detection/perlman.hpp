// PERLMAN: network-layer protocols with Byzantine robustness (dissertation
// §3.7; Perlman's thesis).
//
// Two pieces:
//
//  * PerlmanDetector — the PERLMAN_d strategy the dissertation discusses
//    and rejects: every intermediate router acks every data packet back to
//    the source; on a timeout the source suspects the link past the
//    deepest contiguous acked router. Weak-complete with precision 2, but
//    NOT accurate: colluding routers can frame a correct pair (Fig. 3.8 —
//    b discriminatorily drops d's acks while e drops the data, so the
//    source blames <c, d>). The adversarial test reproduces exactly that.
//
//  * RobustMultipathSender — Perlman's Byzantine-ROBUST data routing under
//    TotalFault(f): forward each packet over f+1 vertex-disjoint paths so
//    at least one copy avoids every faulty router. Robustness without
//    detection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/types.hpp"
#include "routing/disjoint.hpp"
#include "sim/network.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

inline constexpr std::uint16_t kKindPerlmanAck = 0x2111;

/// The per-hop acknowledgement (public so adversarial code can inspect and
/// discriminate on it, as Fig. 3.8's colluder does: ack headers are not
/// confidential).
struct PerlmanAckPayload final : sim::ControlPayload {
  std::uint64_t path_tag = 0;
  validation::Fingerprint fp = 0;
  std::uint32_t from_position = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kKindPerlmanAck; }
};

struct PerlmanConfig {
  util::Duration per_hop_bound = util::Duration::millis(5);
  std::uint32_t flow_id = 0;
};

/// PERLMAN_d on one fixed (source-routed) path.
class PerlmanDetector {
 public:
  PerlmanDetector(sim::Network& net, const crypto::KeyRegistry& keys, routing::Path path,
                  PerlmanConfig config);
  PerlmanDetector(const PerlmanDetector&) = delete;
  PerlmanDetector& operator=(const PerlmanDetector&) = delete;

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  [[nodiscard]] std::uint64_t ack_messages_sent() const { return acks_sent_; }

 private:
  void on_forward(std::size_t position, const sim::Packet& p);
  void on_source_timeout(validation::Fingerprint fp);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  routing::Path path_;
  PerlmanConfig config_;
  crypto::SipKey fp_key_;
  std::uint64_t path_tag_;
  std::map<validation::Fingerprint, std::set<std::size_t>> acked_;
  std::map<validation::Fingerprint, sim::EventId> timers_;
  std::uint64_t acks_sent_ = 0;
  std::vector<Suspicion> suspicions_;
  std::set<std::pair<std::size_t, std::int64_t>> suspected_;
};

/// Perlman's Byzantine-robust forwarding: duplicates each datagram over
/// f+1 vertex-disjoint paths.
class RobustMultipathSender {
 public:
  /// Computes f+1 disjoint paths at construction (throws std::runtime_error
  /// if the topology cannot supply them — the TotalFault(f) requirement).
  RobustMultipathSender(sim::Network& net, const routing::Topology& topo, util::NodeId src,
                        util::NodeId dst, std::size_t f);

  /// Sends one datagram over every path (copies share flow/seq/payload, so
  /// duplicates deduplicate by fingerprint at the receiver).
  void send(std::uint32_t flow_id, std::uint32_t seq, std::uint32_t payload_bytes);

  [[nodiscard]] const std::vector<routing::Path>& paths() const { return paths_; }

 private:
  sim::Network& net_;
  util::NodeId src_;
  util::NodeId dst_;
  std::vector<routing::Path> paths_;
  std::vector<std::shared_ptr<const std::vector<util::NodeId>>> routes_;
};

}  // namespace fatih::detection
