// Robust flooding of detection payloads (Perlman-style, §3.7; the
// dissertation's Pi2 relies on consensus over signed values, which with a
// signature infrastructure and the good-path condition reduces to robust
// flooding of signed messages: every correct router receives every correct
// router's signed summary, and equivocation by a faulty router is
// detectable because two conflicting signed values for the same key both
// circulate).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/network.hpp"
#include "util/types.hpp"

namespace fatih::detection {

class ReliableChannel;

/// Floods control payloads to every router; delivery callbacks fire at
/// each correct router as copies arrive. A compromised router can be told
/// to suppress re-flooding (protocol-faulty behavior); the good-path
/// condition keeps dissemination alive regardless.
class FloodService {
 public:
  /// `kind` selects which control payloads this service owns.
  FloodService(sim::Network& net, std::uint16_t kind);

  /// Deduplication key: payloads with equal keys are flooded once.
  using KeyFn = std::function<std::uint64_t(const sim::ControlPayload&)>;
  void set_key_fn(KeyFn fn) { key_fn_ = std::move(fn); }

  /// Called at router `at` whenever a new (non-duplicate) payload arrives.
  using DeliveryFn =
      std::function<void(util::NodeId at, const sim::ControlPayload&, util::SimTime)>;
  void set_delivery_fn(DeliveryFn fn) { delivery_fn_ = std::move(fn); }

  /// Verify-before-reflood: when set, every arriving hop copy is validated
  /// BEFORE delivery and re-flood. A failing copy is dropped — honest
  /// routers never propagate unverifiable control traffic — and invalid_fn
  /// (if set) fires with the hop that handed it over, which in the
  /// simulation is ground truth and therefore supports a precision-1
  /// suspicion of that hop. Locally originated payloads skip validation
  /// (the originator vouches for its own messages). Rejected copies are
  /// not marked seen, so the same content arriving over a clean path is
  /// still judged on its own merits.
  using ValidateFn = std::function<bool(util::NodeId at, const sim::ControlPayload&)>;
  void set_validate_fn(ValidateFn fn) { validate_fn_ = std::move(fn); }
  using InvalidFn = std::function<void(util::NodeId at, util::NodeId prev,
                                       const sim::ControlPayload&, util::SimTime)>;
  void set_invalid_fn(InvalidFn fn) { invalid_fn_ = std::move(fn); }

  /// Originates a flood at `from`.
  void originate(util::NodeId from, std::shared_ptr<const sim::ControlPayload> payload,
                 std::uint32_t wire_bytes);

  /// Makes `r` stop re-flooding (protocol-faulty suppression). It still
  /// receives payloads addressed to it.
  void suppress_at(util::NodeId r) { suppressed_.insert(r); }

  /// Routes every hop copy through a reliable channel (ack/retransmit per
  /// link) instead of fire-and-forget interface sends. The channel must
  /// share this service's kind and key function and outlive it.
  void set_channel(ReliableChannel* ch) { channel_ = ch; }

  /// Hop copies sent (first transmissions; the channel counts retries).
  [[nodiscard]] std::uint64_t copies_sent() const { return copies_sent_; }
  /// Wire bytes of those first transmissions, headers included.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void on_control(util::NodeId at, const sim::Packet& p, util::NodeId prev);
  void forward_copies(util::NodeId at, std::shared_ptr<const sim::ControlPayload> payload,
                      std::uint32_t bytes, util::NodeId except_peer);

  sim::Network& net_;
  std::uint16_t kind_;
  KeyFn key_fn_;
  DeliveryFn delivery_fn_;
  ValidateFn validate_fn_;
  InvalidFn invalid_fn_;
  ReliableChannel* channel_ = nullptr;
  std::set<util::NodeId> suppressed_;
  std::vector<std::set<std::uint64_t>> seen_;  // per node
  std::uint64_t copies_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace fatih::detection
