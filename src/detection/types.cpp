#include "detection/types.hpp"

#include "util/log.hpp"

namespace fatih::detection {

std::string Suspicion::to_string() const {
  return util::strfmt("%s suspects %s during [%s,%s) cause=%s conf=%.4f",
                      util::node_name(reporter).c_str(), segment.to_string().c_str(),
                      util::to_string(interval.begin).c_str(),
                      util::to_string(interval.end).c_str(), cause.c_str(), confidence);
}

}  // namespace fatih::detection
