#include "detection/sectrace.hpp"

#include <algorithm>

#include "detection/tv.hpp"
#include "util/log.hpp"

namespace fatih::detection {

namespace {
routing::PathSegment prefix_of(const routing::Path& path, std::size_t upto) {
  return routing::PathSegment(
      std::vector<util::NodeId>(path.begin(), path.begin() + static_cast<std::ptrdiff_t>(upto) + 1));
}
}  // namespace

SecTraceDetector::SecTraceDetector(sim::Network& net, const crypto::KeyRegistry& keys,
                                   const PathCache& paths, routing::Path path,
                                   SecTraceConfig config)
    : net_(net), keys_(keys), path_(std::move(path)), config_(config) {
  generators_.resize(path_.size());
  // The source records its transmissions into every prefix; router i
  // records receipts off prefix i (it is that prefix's sink).
  generators_[0] = std::make_unique<SummaryGenerator>(net_, keys_, path_[0], config_.clock,
                                                      paths);
  for (std::size_t i = 1; i < path_.size(); ++i) {
    generators_[i] = std::make_unique<SummaryGenerator>(net_, keys_, path_[i], config_.clock,
                                                        paths);
    const auto prefix = prefix_of(path_, i);
    if (prefix.length() >= 2) {
      generators_[0]->monitor(prefix, 0);
      generators_[i]->monitor(prefix, i);
    }
  }

  // Replies arrive at the source as signed summaries.
  net_.node(path_[0]).add_control_sink([this](const sim::Packet& p, util::NodeId,
                                              util::SimTime) {
    if (p.control == nullptr || p.control->kind() != kKindSecTraceSummary) return;
    const auto& payload = static_cast<const SegmentSummaryPayload&>(*p.control);
    if (!crypto::verify(keys_, payload.envelope)) return;
    if (payload.envelope.signer != payload.summary.reporter) return;
    if (payload.envelope.payload != payload.summary.to_bytes()) return;
    replies_[payload.summary.round] = payload.summary;
  });
}

void SecTraceDetector::start() {
  const auto first = config_.clock.interval_of(0).end + config_.collect_settle;
  net_.sim().schedule_at(first, [this] { run_round(0); });
}

void SecTraceDetector::run_round(std::int64_t round) {
  const std::size_t target = target_;
  const auto prefix = prefix_of(path_, target);

  // The target ships its summary of the just-finished round to the source
  // (signed; routed through the very path being probed).
  SegmentSummary reply = generators_[target]->take_summary(prefix, round);
  auto payload = std::make_shared<SegmentSummaryPayload>();
  payload->kind_tag = kKindSecTraceSummary;
  payload->envelope = crypto::sign(keys_, path_[target], reply.to_bytes());
  payload->summary = std::move(reply);
  sim::PacketHeader hdr;
  hdr.src = path_[target];
  hdr.dst = path_[0];
  hdr.proto = sim::Protocol::kControl;
  sim::Packet p = net_.make_packet(hdr, payload->summary.wire_bytes());
  p.control = std::move(payload);
  net_.router(path_[target]).originate(p);

  net_.sim().schedule_in(config_.reply_timeout,
                         [this, round, target] { evaluate(round, target); });
  const auto next = config_.clock.interval_of(round + 1).end + config_.collect_settle;
  net_.sim().schedule_at(next, [this, round] { run_round(round + 1); });
}

void SecTraceDetector::evaluate(std::int64_t round, std::size_t target) {
  const auto prefix = prefix_of(path_, target);
  const SegmentSummary own = generators_[0]->take_summary(prefix, round);

  bool consistent = false;
  bool had_reply = false;
  if (auto it = replies_.find(round); it != replies_.end() && it->second.segment == prefix) {
    had_reply = true;
    TvThresholds th;
    th.max_lost_packets = config_.max_lost_packets;
    const auto outcome = evaluate_tv(TvPolicy::kContent, th, own, it->second);
    consistent = outcome.ok;
    replies_.erase(it);
  }

  if (consistent) {
    // Advance toward the destination; wrap for continuous monitoring.
    if (target + 1 < path_.size()) {
      target_ = target + 1;
    } else {
      completed_ = true;
      target_ = 1;
    }
    return;
  }

  // §3.6: the source blames the link between the first unvalidated router
  // and its (previously validated) upstream neighbor — the attribution
  // the dissertation shows a well-timed upstream attacker can exploit.
  Suspicion s;
  s.reporter = path_[0];
  s.segment = routing::PathSegment{path_[target - 1], path_[target]};
  s.interval = config_.clock.interval_of(round);
  s.cause = had_reply ? "sectrace-mismatch" : "sectrace-no-reply";
  util::log(util::LogLevel::kInfo, "sectrace", "%s", s.to_string().c_str());
  suspicions_.push_back(s);
  // Restart the sweep from the first hop.
  target_ = 1;
}

}  // namespace fatih::detection
