// HERZBERG: early detection of message-forwarding faults (dissertation
// §3.3; Herzberg & Kutten). Per-packet acknowledgement protocols on a
// fixed path, in the three variants whose time/message trade-off the
// dissertation analyzes:
//
//   * end-to-end:  the destination acks each packet back along the path;
//     every router times the ack out against its worst-case round trip to
//     the destination. One ack message per packet, but detection latency
//     grows with the remaining path length.
//   * hop-by-hop:  every router acks every packet straight back to the
//     source, which locates the fault at the deepest acked hop. Optimal
//     detection precision and locality, O(path length) messages per packet.
//   * checkpoint:  only every c-th router (and the sink) acks, to the
//     previous checkpoint — HERZBERG_optimal's interpolation between the
//     two extremes.
//
// All variants detect packet loss on the monitored flow (the protocol's
// stated threat model, §2.2.1) with precision 2 for end-to-end and
// hop-by-hop and precision c+1 for checkpoints, and are weak-complete.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

/// Control payload kinds in the 0x21xx range (ack-protocol baselines).
inline constexpr std::uint16_t kKindHerzbergAck = 0x2101;
inline constexpr std::uint16_t kKindHerzbergFault = 0x2102;

struct HerzbergConfig {
  enum class Mode { kEndToEnd, kHopByHop, kCheckpoint };
  Mode mode = Mode::kEndToEnd;
  /// Worst-case one-hop latency bound (propagation + transmission +
  /// processing); timeouts are multiples of it.
  util::Duration per_hop_bound = util::Duration::millis(5);
  /// Checkpoint spacing c (kCheckpoint only).
  std::size_t checkpoint_spacing = 2;
  /// The flow this instance monitors.
  std::uint32_t flow_id = 0;
};

/// One HERZBERG instance: monitors one flow along one fixed path.
class HerzbergDetector {
 public:
  HerzbergDetector(sim::Network& net, const crypto::KeyRegistry& keys, routing::Path path,
                   HerzbergConfig config);
  HerzbergDetector(const HerzbergDetector&) = delete;
  HerzbergDetector& operator=(const HerzbergDetector&) = delete;

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  void set_suspicion_handler(SuspicionHandler h) { handler_ = std::move(h); }

  /// Protocol overhead accounting (for the §3.3 trade-off bench).
  [[nodiscard]] std::uint64_t data_packets_seen() const { return data_seen_; }
  [[nodiscard]] std::uint64_t ack_messages_sent() const { return acks_sent_; }
  /// Time of the first suspicion; SimTime::infinity() if none yet.
  [[nodiscard]] util::SimTime first_detection_time() const { return first_detection_; }

 private:
  struct Watch {
    sim::EventId timer = 0;
    bool armed = false;
  };

  void on_forward(std::size_t position, const sim::Packet& p);
  void on_sink_receive(const sim::Packet& p);
  void on_ack_seen(std::size_t position, validation::Fingerprint fp, std::size_t from_position);
  void on_timeout(std::size_t position, validation::Fingerprint fp);
  void send_ack(std::size_t from_position, validation::Fingerprint fp, std::size_t to_position);
  void send_fault_announcement(std::size_t position, validation::Fingerprint fp);
  void suspect_from(std::size_t boundary, const char* cause);
  [[nodiscard]] bool is_checkpoint(std::size_t position) const;
  [[nodiscard]] std::size_t previous_checkpoint(std::size_t position) const;
  [[nodiscard]] std::size_t next_checkpoint(std::size_t position) const;
  /// Source-routed control packet from path_[from] to path_[to] (to < from).
  void send_back(std::size_t from, std::size_t to, std::shared_ptr<const sim::ControlPayload> pl);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  routing::Path path_;
  HerzbergConfig config_;
  crypto::SipKey fp_key_;
  std::uint64_t path_tag_;
  // watches_[position][fp] — armed timers per router position.
  std::vector<std::map<validation::Fingerprint, Watch>> watches_;
  // Source-side ack bookkeeping for hop-by-hop mode: fp -> acked positions.
  std::map<validation::Fingerprint, std::set<std::size_t>> hop_acked_;
  std::uint64_t data_seen_ = 0;
  std::uint64_t acks_sent_ = 0;
  util::SimTime first_detection_ = util::SimTime::infinity();
  std::vector<Suspicion> suspicions_;
  std::set<std::pair<std::size_t, std::int64_t>> suspected_;  // (boundary, second)
  SuspicionHandler handler_;
};

}  // namespace fatih::detection
