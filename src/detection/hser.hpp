// HSER: highly secure and efficient routing (dissertation §3.2; Avramopoulos
// et al.). Per-packet, per-hop Byzantine detection on a source-routed path:
// a combination of "source routing, hop-by-hop authentication, ... sequence
// numbers, timeouts, end-to-end reliability mechanisms, and fault
// announcements" — none novel alone, Byzantine robustness in combination.
//
// Each data packet carries a MAC computed by the source under the key it
// shares with each router of the path (simulated as one MAC under the
// source/sink fingerprint key that every path router can verify via the
// registry). Every hop:
//   * verifies the MAC — a MODIFIED packet fails verification, and the
//     detecting router announces the upstream link <prev, me> to the
//     source (unlike the loss-only ack protocols, HSER catches tampering);
//   * forwards and arms a timeout for the destination's signed ack; a
//     missing ack implicates <me, next>.
// Weak-complete (the source collects announcements), accurate with
// precision 2 (§3.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/mac.hpp"
#include "detection/types.hpp"
#include "sim/network.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::detection {

inline constexpr std::uint16_t kKindHserAck = 0x2131;
inline constexpr std::uint16_t kKindHserFault = 0x2132;

struct HserConfig {
  util::Duration per_hop_bound = util::Duration::millis(5);
  std::uint32_t flow_id = 0;
};

/// One HSER session over one source-routed path. The detector also OWNS
/// the sending side: call send() to emit authenticated data packets (HSER
/// is inseparable from its source-routed, MAC-tagged wire format).
class HserDetector {
 public:
  HserDetector(sim::Network& net, const crypto::KeyRegistry& keys, routing::Path path,
               HserConfig config);
  HserDetector(const HserDetector&) = delete;
  HserDetector& operator=(const HserDetector&) = delete;

  /// Sends one authenticated data packet along the path.
  void send(std::uint32_t seq, std::uint32_t payload_bytes);

  [[nodiscard]] const std::vector<Suspicion>& suspicions() const { return suspicions_; }
  /// Faults announced to the source, as (boundary position) counts.
  [[nodiscard]] std::uint64_t auth_failures() const { return auth_failures_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  void on_receive(std::size_t position, const sim::Packet& p);
  void on_timeout(std::size_t position, validation::Fingerprint fp);
  void announce(std::size_t boundary_lo, const char* cause);
  void send_back(std::size_t from, std::shared_ptr<const sim::ControlPayload> payload);
  [[nodiscard]] crypto::MacTag mac_of(const sim::Packet& p) const;

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  routing::Path path_;
  HserConfig config_;
  crypto::SipKey auth_key_;  ///< source-held key every path router can check
  std::uint64_t path_tag_;
  // Per-packet MAC expectations: fp -> MAC carried "in the packet" (the
  // simulator's payload has no byte field for it, so the session keeps the
  // mapping the wire format would carry).
  std::map<validation::Fingerprint, crypto::MacTag> wire_macs_;
  std::vector<std::map<validation::Fingerprint, sim::EventId>> timers_;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t delivered_ = 0;
  std::vector<Suspicion> suspicions_;
  std::set<std::pair<std::size_t, std::int64_t>> suspected_;
  std::set<validation::Fingerprint> announced_fps_;  ///< first report wins
};

}  // namespace fatih::detection
