#include "detection/pi2.hpp"

#include <algorithm>

#include "crypto/siphash.hpp"
#include "detection/evidence.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace fatih::detection {

namespace {
constexpr const char* kComponent = "pi2";

std::uint64_t payload_key(const sim::ControlPayload& payload) {
  const auto& p = static_cast<const SegmentSummaryPayload&>(payload);
  // Key on the full signed content so equivocating summaries BOTH flood.
  constexpr crypto::SipKey kKey{0x50493246C00DF00DULL, 0x64697373656D3031ULL};
  auto bytes = p.summary.to_bytes();
  crypto::append_bytes(bytes, p.envelope.tag);
  return crypto::siphash24(kKey, bytes.data(), bytes.size());
}
}  // namespace

Pi2Engine::Pi2Engine(sim::Network& net, const crypto::KeyRegistry& keys, const PathCache& paths,
                     const std::vector<util::NodeId>& terminals, Pi2Config config)
    : net_(net),
      keys_(keys),
      paths_(paths),
      config_(config),
      guard_(net, keys, obs::TraceSource::kPi2, "pi2") {
  // Enumerate the in-use paths and the monitored segments.
  const auto used_paths = paths.tables().all_paths(terminals);
  const routing::SegmentIndex index(used_paths, config_.k);
  segments_ = index.all_pi2_segments();
  for (std::size_t i = 0; i < segments_.size(); ++i) segment_ids_[segments_[i]] = i;

  generators_.resize(net_.node_count());
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    if (!net_.is_router(r)) continue;
    bool monitors_any = false;
    for (const auto& seg : segments_) {
      if (seg.contains(r)) {
        monitors_any = true;
        break;
      }
    }
    if (!monitors_any) continue;
    generators_[r] =
        std::make_unique<SummaryGenerator>(net_, keys_, r, config_.clock, paths);
    for (const auto& seg : segments_) {
      const auto& nodes = seg.nodes();
      for (std::size_t pos = 0; pos < nodes.size(); ++pos) {
        if (nodes[pos] == r) generators_[r]->monitor(seg, pos);
      }
    }
  }

  flood_ = std::make_unique<FloodService>(net_, kKindSummaryFlood);
  flood_->set_key_fn(payload_key);
  if (config_.reliable.enabled) {
    channel_ =
        std::make_unique<ReliableChannel>(net_, keys_, kKindSummaryFlood, config_.reliable);
    channel_->set_key_fn(payload_key);
    flood_->set_channel(channel_.get());
  }
  // Verify-before-reflood: an unverifiable copy is dropped at the first
  // honest hop and attributed to the hop that handed it over.
  flood_->set_validate_fn([this](util::NodeId, const sim::ControlPayload& payload) {
    std::optional<SegmentSummary> decoded;
    return vet(payload, decoded) == ControlVerdict::kOk;
  });
  flood_->set_invalid_fn([this](util::NodeId at, util::NodeId prev,
                                const sim::ControlPayload& payload, util::SimTime) {
    on_invalid(at, prev, payload);
  });
  flood_->set_delivery_fn(
      [this](util::NodeId at, const sim::ControlPayload& payload, util::SimTime) {
        on_delivery(at, payload);
      });
}

ControlVerdict Pi2Engine::vet(const sim::ControlPayload& payload,
                              std::optional<SegmentSummary>& out, std::int64_t* margin) const {
  const auto& p = static_cast<const SegmentSummaryPayload&>(payload);
  const ControlVerdict verdict = guard_.check_summary(p.envelope, out);
  if (verdict != ControlVerdict::kOk) return verdict;
  return guard_.admit_round(out->round, closed_round_,
                            config_.clock.round_of(net_.sim().now()), margin);
}

void Pi2Engine::on_invalid(util::NodeId at, util::NodeId prev,
                           const sim::ControlPayload& payload) {
  std::optional<SegmentSummary> decoded;
  std::int64_t margin = 0;
  const ControlVerdict verdict = vet(payload, decoded, &margin);
  guard_.reject(at, prev, decoded.has_value() ? decoded->round : -1, verdict, nullptr);
  if (verdict == ControlVerdict::kStale && margin < ControlGuard::kSuspectMargin) {
    return;  // plausibly a late retransmission from the retry schedule
  }
  // The hop that handed over the bad copy is ground truth in the sim:
  // honest routers verify before re-flooding, so `prev` forged, tampered
  // or replayed it — precision 1, no ambiguity.
  const char* cause =
      verdict == ControlVerdict::kStale ? "stale-replay" : "invalid-control";
  suspect(at, routing::PathSegment{prev}, config_.clock.round_of(net_.sim().now()), cause);
}

void Pi2Engine::on_delivery(util::NodeId at, const sim::ControlPayload& payload) {
  const auto& p = static_cast<const SegmentSummaryPayload&>(payload);
  std::optional<SegmentSummary> decoded;
  if (vet(payload, decoded) != ControlVerdict::kOk) return;  // originator-local copies
  guard_.accept();
  const auto it = segment_ids_.find(decoded->segment);
  if (it == segment_ids_.end()) return;
  const std::size_t sid = it->second;
  // Equivocation ledger: the flood keys on full signed content, so two
  // conflicting signed summaries for one (segment, reporter, round) BOTH
  // circulate — the first router to hold the pair files it as a proof.
  const std::tuple<std::size_t, util::NodeId, std::int64_t> stmt{sid, decoded->reporter,
                                                                 decoded->round};
  const auto [fit, fresh] = first_envelope_.emplace(stmt, p.envelope);
  if (!fresh && fit->second.payload != p.envelope.payload) {
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     byzantine(net_.sim().now(), obs::TraceSource::kPi2,
                               obs::TraceCode::kEquivocationProven, at, decoded->reporter,
                               decoded->round, sid, "conflicting-summaries"));
    FATIH_METRIC_REG(net_.sim().metrics(), counter("byzantine.pi2.equivocations").inc());
    if (conviction_ != nullptr && proof_filed_.insert(stmt).second) {
      conviction_->accuse(at, static_cast<std::uint8_t>(obs::TraceSource::kPi2),
                          routing::PathSegment{decoded->reporter}, decoded->round,
                          "equivocation", {fit->second, p.envelope});
    }
  }
  // Dedup into the canonical variant store (payload bytes are the
  // canonical serialization, so equal bytes == equal summary); the
  // per-router slot just records which variant this router holds.
  auto& vars = variants_[stmt];
  std::uint32_t vidx = kNoVariant;
  for (std::uint32_t i = 0; i < vars.size(); ++i) {
    if (vars[i].payload == p.envelope.payload) {
      vidx = i;
      break;
    }
  }
  if (vidx == kNoVariant) {
    Variant v;
    v.counters = decoded->counters;
    v.content = std::move(decoded->content);
    v.payload = p.envelope.payload;
    vidx = static_cast<std::uint32_t>(vars.size());
    vars.push_back(std::move(v));
  }
  Slot& slot = received_[{at, sid, decoded->reporter, decoded->round}];
  if (slot.variant != kNoVariant) {
    if (slot.variant != vidx) slot.poisoned = true;  // conflicting signed copies
    return;
  }
  slot.variant = vidx;
}

void Pi2Engine::inject_summary(util::NodeId from, const SegmentSummary& summary) {
  auto payload = std::make_shared<SegmentSummaryPayload>();
  payload->kind_tag = kKindSummaryFlood;
  payload->envelope = crypto::sign(keys_, from, summary.to_bytes());
  payload->summary = summary;
  const std::uint32_t bytes = payload->summary.wire_bytes();
  flood_->originate(from, std::move(payload), bytes);
}

void Pi2Engine::start() {
  // Begin with the first round whose collection point is still ahead
  // (an engine commissioned mid-experiment skips the already-past rounds).
  std::int64_t round = 0;
  while (config_.clock.interval_of(round).end + config_.collect_settle <= net_.sim().now()) {
    ++round;
  }
  const auto first = config_.clock.interval_of(round).end + config_.collect_settle;
  const std::int64_t start_round = round;
  net_.sim().schedule_at(first, [this, start_round] { run_round(start_round); });
}

std::vector<routing::PathSegment> Pi2Engine::monitored_by(util::NodeId r) const {
  std::vector<routing::PathSegment> out;
  for (const auto& seg : segments_) {
    if (seg.contains(r)) out.push_back(seg);
  }
  return out;
}

void Pi2Engine::run_round(std::int64_t round) {
  ++counters_.rounds_opened;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kPi2,
                               obs::TraceCode::kRoundOpen, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pi2.rounds_opened").inc());
  disseminate(round);
  net_.sim().schedule_in(config_.evaluate_settle, [this, round] { evaluate(round); });
  if (config_.rounds == 0 || round + 1 < config_.rounds) {
    const auto next = config_.clock.interval_of(round + 1).end + config_.collect_settle;
    net_.sim().schedule_at(next, [this, round] { run_round(round + 1); });
  }
}

void Pi2Engine::disseminate(std::int64_t round) {
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    if (generators_[r] == nullptr) continue;
    auto mut = mutators_.find(r);
    for (const auto& seg : segments_) {
      if (!seg.contains(r)) continue;
      SegmentSummary summary = generators_[r]->take_summary(seg, round);
      if (mut != mutators_.end()) {
        if (!mut->second(summary)) continue;  // suppressed
      }
      auto payload = std::make_shared<SegmentSummaryPayload>();
      payload->kind_tag = kKindSummaryFlood;
      payload->envelope = crypto::sign(keys_, r, summary.to_bytes());
      payload->summary = std::move(summary);
      const auto bytes = payload->summary.wire_bytes();
      flood_->originate(r, std::move(payload), bytes);
    }
  }
}

void Pi2Engine::evaluate(std::int64_t round) {
  // Churn awareness: a round whose interval straddles ANY route change —
  // or a segment off the live path after a reroute — is invalidated
  // rather than evaluated. The whole-fabric test (changed_during, not
  // per-segment path stability) is deliberate: the recorders judge
  // traffic against the end-to-end path in force at each packet's
  // creation, so a reroute of a *flow* contaminates summaries even on
  // segments whose own endpoints kept their path (the flow's source
  // records packets "into" a segment they now detour around). The
  // transient mixes honestly-forwarded and blackholed/detoured traffic,
  // so any verdict would violate a-Accuracy; detection resumes the first
  // round fully inside the new epoch. The window runs to `now` so route
  // changes that ate this round's *control* traffic (summary floods) are
  // covered too.
  const auto interval = config_.clock.interval_of(round);
  const auto now = net_.sim().now();
  const bool churned = paths_.changed_during(interval.begin, now);
  std::vector<bool> invalid(segments_.size(), false);
  std::uint64_t invalidated_here = 0;
  for (std::size_t sid = 0; sid < segments_.size(); ++sid) {
    const auto& nodes = segments_[sid].nodes();
    const bool off_path =
        paths_.epoch_count() > 1 &&
        !segments_[sid].within(paths_.path_at(nodes.front(), nodes.back(), now));
    if (churned || off_path) {
      invalid[sid] = true;
      ++counters_.rounds_invalidated;
      ++invalidated_here;
    }
  }
  if (invalidated_here > 0) {
    FATIH_TRACE_EMIT(net_.sim().trace(),
                     round_event(now, obs::TraceSource::kPi2, obs::TraceCode::kRoundInvalidated,
                                 round, invalidated_here));
    FATIH_METRIC_REG(net_.sim().metrics(),
                     counter("pi2.rounds_invalidated").inc(invalidated_here));
  }

  // Every correct router evaluates every monitored segment: the summary
  // flood already delivered all signed summaries everywhere, which is the
  // reliable broadcast of evidence in Fig. 5.1 and yields strong
  // completeness (all correct routers suspect, not just segment members).
  for (util::NodeId r = 0; r < net_.node_count(); ++r) {
    if (!net_.is_router(r)) continue;
    for (const auto& seg : segments_) {
      const std::size_t sid = segment_ids_.at(seg);
      if (invalid[sid]) continue;
      const auto& nodes = seg.nodes();
      // Graceful degradation: the round completes on whatever summaries
      // made it. A reporter whose summary never arrived (after the
      // transport exhausted its retries) is itself suspected — withholding
      // is evidence under the protocol-faulty definition (§2.2.1) — with
      // precision 1, strictly tighter than the pair bound. Equivocation
      // (two conflicting signed summaries for one key) likewise convicts
      // the signer alone.
      // Resolve each reporter's slot to its shared variant; the TV sweep
      // then reads spans out of the variant store, sorting each distinct
      // summary at most once for ALL routers and pairs.
      auto tv_view = [this](Variant& v) {
        if (config_.policy != TvPolicy::kFlow && v.sorted.size() != v.content.size()) {
          v.sorted = v.content;
          std::sort(v.sorted.begin(), v.sorted.end());
        }
        return TvView{v.content, v.sorted, v.counters.packets};
      };
      std::vector<Variant*> vars(nodes.size(), nullptr);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto it = received_.find({r, sid, nodes[i], round});
        if (it == received_.end() || it->second.variant == kNoVariant) {
          suspect(r, routing::PathSegment{nodes[i]}, round, "withheld-summary");
        } else if (it->second.poisoned) {
          suspect(r, routing::PathSegment{nodes[i]}, round, "equivocation");
        } else {
          vars[i] = &variants_.at({sid, nodes[i], round})[it->second.variant];
        }
      }
      for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        Variant* up = vars[i];
        Variant* down = vars[i + 1];
        if (up == nullptr || down == nullptr) continue;  // per-reporter verdict covered it
        const auto outcome =
            evaluate_tv(config_.policy, config_.thresholds, tv_view(*up), tv_view(*down));
        if (!outcome.ok) {
          suspect(r, routing::PathSegment{nodes[i], nodes[i + 1]}, round, "tv-failed");
        }
      }
    }
  }
  // Close the anti-replay window: copies for this round (or older)
  // arriving from now on are replays, dropped at the first honest hop.
  closed_round_ = std::max(closed_round_, round);
  // Garbage-collect this round's state (closed rounds can no longer gain
  // equivocation conflicts either — the watermark rejects their copies).
  received_.erase_if([round](const auto& kv) { return std::get<3>(kv.first) <= round; });
  variants_.erase_if([round](const auto& kv) { return std::get<2>(kv.first) <= round; });
  first_envelope_.erase_if([round](const auto& kv) { return std::get<2>(kv.first) <= round; });
  proof_filed_.erase_if([round](const auto& k) { return std::get<2>(k) <= round; });
  ++counters_.rounds_evaluated;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   round_event(net_.sim().now(), obs::TraceSource::kPi2,
                               obs::TraceCode::kRoundClose, round));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pi2.rounds_evaluated").inc());
}

void Pi2Engine::suspect(util::NodeId reporter, const routing::PathSegment& pair,
                        std::int64_t round, const char* cause) {
  if (!raised_.insert({reporter, pair, round}).second) return;
  Suspicion s;
  s.reporter = reporter;
  s.segment = pair;
  s.interval = config_.clock.interval_of(round);
  s.cause = cause;
  util::log(util::LogLevel::kInfo, kComponent, "%s", s.to_string().c_str());
  ++counters_.suspicions;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   suspicion(net_.sim().now(), obs::TraceSource::kPi2, reporter,
                             pair.nodes().front(), pair.nodes().back(), pair.length(), round,
                             s.confidence, cause));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("pi2.suspicions").inc());
  suspicions_.push_back(s);
  if (handler_) handler_(suspicions_.back());
  if (conviction_ != nullptr) {
    // Evidence-free witness vote; only precision-1 votes can ever combine
    // into a conviction, and only with a quorum of distinct reporters.
    conviction_->accuse(reporter, static_cast<std::uint8_t>(obs::TraceSource::kPi2), pair,
                        round, cause);
  }
}

std::uint64_t Pi2Engine::state_fingerprint() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(closed_round_));
  h = util::fnv1a64_word(h, counters_.rounds_opened);
  h = util::fnv1a64_word(h, counters_.rounds_evaluated);
  h = util::fnv1a64_word(h, counters_.rounds_invalidated);
  h = util::fnv1a64_word(h, counters_.suspicions);
  h = util::fnv1a64_word(h, received_.size());
  h = util::fnv1a64_word(h, variants_.size());
  h = util::fnv1a64_word(h, first_envelope_.size());
  for (const Suspicion& s : suspicions_) {
    const std::string text = s.to_string();
    h = util::fnv1a64(text.data(), text.size(), h);
  }
  return h;
}

}  // namespace fatih::detection
