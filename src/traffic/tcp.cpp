#include "traffic/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace fatih::traffic {

using sim::kFlagAck;
using sim::kFlagSyn;

namespace {
constexpr std::uint32_t kAckBytes = 0;  // pure ACK: header only

void dispatch(sim::Network& net, util::NodeId from, const sim::Packet& p) {
  if (net.is_router(from)) {
    net.router(from).originate(p);
  } else {
    net.host(from).send(p);
  }
}
}  // namespace

TcpFlow::TcpFlow(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
                 TcpConfig config)
    : net_(net),
      src_(src),
      dst_(dst),
      flow_id_(flow_id),
      config_(config),
      cwnd_(config.initial_cwnd),
      rto_(config.syn_rto) {
  net_.node(src_).add_local_handler(
      [this](const sim::Packet& p, util::NodeId, util::SimTime now) {
        if (p.hdr.proto == sim::Protocol::kTcp && p.hdr.flow_id == flow_id_ &&
            p.hdr.src == dst_) {
          on_sender_packet(p, now);
        }
      });
  net_.node(dst_).add_local_handler(
      [this](const sim::Packet& p, util::NodeId, util::SimTime now) {
        if (p.hdr.proto == sim::Protocol::kTcp && p.hdr.flow_id == flow_id_ &&
            p.hdr.src == src_) {
          on_receiver_packet(p, now);
        }
      });
}

void TcpFlow::start(util::SimTime when) {
  net_.sim().schedule_at(when, [this] {
    started_ = true;
    start_time_ = net_.sim().now();
    connect_time_ = util::SimTime::infinity();
    send_syn();
  });
}

util::Duration TcpFlow::connect_latency() const {
  if (connect_time_ == util::SimTime::infinity()) {
    return util::Duration::seconds(1'000'000'000);
  }
  return connect_time_ - start_time_;
}

double TcpFlow::goodput_pps() const {
  const double elapsed = (last_ack_time_ - start_time_).to_seconds();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(acked_) / elapsed;
}

void TcpFlow::send_control(util::NodeId from, util::NodeId to, std::uint8_t flags,
                           std::uint32_t seq, std::uint32_t ack) {
  sim::PacketHeader hdr;
  hdr.src = from;
  hdr.dst = to;
  hdr.flow_id = flow_id_;
  hdr.seq = seq;
  hdr.ack = ack;
  hdr.proto = sim::Protocol::kTcp;
  hdr.flags = flags;
  sim::Packet p = net_.make_packet(hdr, kAckBytes);
  dispatch(net_, from, p);
}

// ------------------------------------------------------------------ sender

void TcpFlow::send_syn() {
  if (established_) return;
  send_control(src_, dst_, kFlagSyn, 0, 0);
  arm_rto(net_.sim().now());
}

void TcpFlow::arm_rto(util::SimTime now) {
  if (rto_armed_) net_.sim().cancel(rto_event_);
  rto_armed_ = true;
  rto_event_ = net_.sim().schedule_at(now + rto_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpFlow::on_rto() {
  ++rto_events_;
  rto_ = rto_ * 2;  // exponential backoff
  if (!established_) {
    ++syn_retx_;
    send_syn();
    return;
  }
  if (completed()) return;
  // Timeout recovery: collapse to one segment and go back to the lowest
  // unacknowledged packet (go-back-N); slow start rebuilds the window.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  rtt_sample_valid_ = false;
  next_seq_ = static_cast<std::uint32_t>(acked_);
  try_send(net_.sim().now());
  arm_rto(net_.sim().now());
}

void TcpFlow::on_sender_packet(const sim::Packet& p, util::SimTime now) {
  if ((p.hdr.flags & kFlagSyn) != 0 && (p.hdr.flags & kFlagAck) != 0) {
    if (!established_) {
      established_ = true;
      connect_time_ = now;
      last_ack_time_ = now;
      // RTT sample from the handshake.
      const double sample = (now - start_time_).to_seconds();
      srtt_ = sample;
      rttvar_ = sample / 2.0;
      rto_ = std::max(config_.min_rto, util::Duration::from_seconds(srtt_ + 4.0 * rttvar_));
      if (rto_armed_) {
        net_.sim().cancel(rto_event_);
        rto_armed_ = false;
      }
      try_send(now);
    }
    return;
  }
  if ((p.hdr.flags & kFlagAck) != 0) {
    on_ack(p.hdr.ack, now);
  }
}

void TcpFlow::on_ack(std::uint32_t cum_ack, util::SimTime now) {
  last_ack_time_ = now;
  if (cum_ack > acked_) {
    // New data acknowledged.
    const std::uint64_t newly = cum_ack - acked_;
    acked_ = cum_ack;
    dupacks_ = 0;
    if (in_recovery_) {
      if (cum_ack >= recovery_point_) {
        in_recovery_ = false;
      } else {
        // NewReno partial ACK: the next hole is lost too; retransmit it
        // immediately instead of waiting for a timeout.
        send_data(cum_ack, now, /*is_retx=*/true);
      }
    }

    // RTT sample (Karn's rule: only if the sampled packet was not
    // retransmitted — validity is cleared on any retransmission).
    if (rtt_sample_valid_ && cum_ack > rtt_sample_seq_) {
      const double sample = (now - rtt_sample_sent_).to_seconds();
      if (srtt_ == 0.0) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
      } else {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
        srtt_ = 0.875 * srtt_ + 0.125 * sample;
      }
      rtt_sample_valid_ = false;
    }
    // New data acknowledged: collapse any RTO backoff to the estimate.
    if (srtt_ > 0.0) {
      rto_ = std::max(config_.min_rto, util::Duration::from_seconds(srtt_ + 4.0 * rttvar_));
    }

    if (!in_recovery_) {
      for (std::uint64_t i = 0; i < newly; ++i) {
        if (cwnd_ < ssthresh_) {
          cwnd_ += 1.0;  // slow start
        } else {
          cwnd_ += 1.0 / cwnd_;  // congestion avoidance
        }
      }
      cwnd_ = std::min(cwnd_, config_.max_cwnd);
    }

    if (completed()) {
      if (rto_armed_) {
        net_.sim().cancel(rto_event_);
        rto_armed_ = false;
      }
      return;
    }
    arm_rto(now);
    try_send(now);
    return;
  }
  // Duplicate ACK.
  ++dupacks_;
  if (dupacks_ == 3 && !in_recovery_) {
    // Fast retransmit / simplified fast recovery.
    in_recovery_ = true;
    recovery_point_ = next_seq_;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    rtt_sample_valid_ = false;
    send_data(static_cast<std::uint32_t>(acked_), now, /*is_retx=*/true);
    arm_rto(now);
  }
}

void TcpFlow::try_send(util::SimTime now) {
  const auto window_end = static_cast<std::uint32_t>(
      acked_ + static_cast<std::uint64_t>(cwnd_));
  while (next_seq_ < window_end) {
    if (config_.packets_to_send > 0 && next_seq_ >= config_.packets_to_send) break;
    send_data(next_seq_, now, /*is_retx=*/false);
    ++next_seq_;
  }
}

void TcpFlow::send_data(std::uint32_t seq, util::SimTime now, bool is_retx) {
  if (seq >= high_water_) {
    high_water_ = seq + 1;
  } else {
    is_retx = true;  // go-back-N resend of an already-sent sequence
  }
  if (is_retx) {
    ++data_retx_;
  } else if (!rtt_sample_valid_) {
    rtt_sample_seq_ = seq;
    rtt_sample_sent_ = now;
    rtt_sample_valid_ = true;
  }
  sim::PacketHeader hdr;
  hdr.src = src_;
  hdr.dst = dst_;
  hdr.flow_id = flow_id_;
  hdr.seq = seq;
  hdr.proto = sim::Protocol::kTcp;
  sim::Packet p = net_.make_packet(hdr, config_.mss_bytes);
  dispatch(net_, src_, p);
  if (!rto_armed_) arm_rto(now);
}

// ---------------------------------------------------------------- receiver

void TcpFlow::on_receiver_packet(const sim::Packet& p, util::SimTime now) {
  (void)now;
  if ((p.hdr.flags & kFlagSyn) != 0) {
    send_control(dst_, src_, kFlagSyn | kFlagAck, 0, 0);
    return;
  }
  // Data packet: update the cumulative ACK.
  const std::uint32_t seq = p.hdr.seq;
  if (seq == rcv_next_) {
    ++rcv_next_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (seq > rcv_next_) {
    out_of_order_.insert(seq);
  }
  send_control(dst_, src_, kFlagAck, 0, rcv_next_);
}

}  // namespace fatih::traffic
