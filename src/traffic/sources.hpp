// Datagram traffic sources and sinks.
//
// The emulation experiments (dissertation §6.4) drive the network with a
// mix of long-lived and bursty traffic. These agents originate UDP-style
// datagrams from a node (host or terminal router) toward a destination,
// and sinks account for what arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fatih::traffic {

/// Sends one packet from `src` toward `dst` immediately (host or router).
void send_datagram(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
                   std::uint32_t seq, std::uint32_t payload_bytes);

/// Sends `count` packets (seq = first_seq .. first_seq+count-1) in the same
/// instant. Host sources go through Interface::send_batch — one queue
/// admission walk for the burst; router sources fall back to per-packet
/// origination (each packet takes the full forwarding chain).
void send_burst(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
                std::uint32_t first_seq, std::uint32_t count, std::uint32_t payload_bytes);

/// Constant-bit-rate source: fixed-size packets at a fixed interval.
class CbrSource {
 public:
  struct Config {
    util::NodeId src = util::kInvalidNode;
    util::NodeId dst = util::kInvalidNode;
    std::uint32_t flow_id = 0;
    std::uint32_t payload_bytes = 960;  ///< + 40B header = 1000B wire size
    double rate_pps = 100.0;            ///< tick rate (bursts multiply throughput)
    /// Packets emitted per tick. >1 models back-to-back line-rate bursts
    /// and exercises the batched admission path (send_burst).
    std::uint32_t packets_per_tick = 1;
    util::SimTime start;
    util::SimTime stop = util::SimTime::infinity();
  };

  CbrSource(sim::Network& net, Config config);

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }

 private:
  void tick();

  sim::Network& net_;
  Config config_;
  std::uint32_t seq_ = 0;
};

/// Poisson source: exponential inter-arrival times (models aggregate
/// background traffic).
class PoissonSource {
 public:
  struct Config {
    util::NodeId src = util::kInvalidNode;
    util::NodeId dst = util::kInvalidNode;
    std::uint32_t flow_id = 0;
    std::uint32_t payload_bytes = 960;
    double mean_rate_pps = 100.0;
    util::SimTime start;
    util::SimTime stop = util::SimTime::infinity();
  };

  PoissonSource(sim::Network& net, Config config);

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }

 private:
  void tick();

  sim::Network& net_;
  Config config_;
  util::Rng rng_;
  std::uint32_t seq_ = 0;
};

/// On-off source: exponentially distributed bursts at a high rate with
/// exponentially distributed silences — the bursty cross-traffic that
/// fills queues and produces genuine congestive loss.
class OnOffSource {
 public:
  struct Config {
    util::NodeId src = util::kInvalidNode;
    util::NodeId dst = util::kInvalidNode;
    std::uint32_t flow_id = 0;
    std::uint32_t payload_bytes = 960;
    double on_rate_pps = 2000.0;
    util::Duration mean_on = util::Duration::millis(100);
    util::Duration mean_off = util::Duration::millis(400);
    util::SimTime start;
    util::SimTime stop = util::SimTime::infinity();
  };

  OnOffSource(sim::Network& net, Config config);

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }

 private:
  void enter_on();
  void enter_off();
  void tick();

  sim::Network& net_;
  Config config_;
  util::Rng rng_;
  bool on_ = false;
  util::SimTime burst_end_;
  std::uint32_t seq_ = 0;
};

/// Per-flow receive accounting at a node.
class FlowSink {
 public:
  struct FlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    util::SimTime last_arrival;
    double sum_latency_seconds = 0.0;

    [[nodiscard]] double mean_latency_seconds() const {
      return packets > 0 ? sum_latency_seconds / static_cast<double>(packets) : 0.0;
    }
  };

  /// Attaches to `node`'s local delivery path; counts every data packet.
  FlowSink(sim::Network& net, util::NodeId node);

  [[nodiscard]] const FlowStats& flow(std::uint32_t flow_id) const;
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }

 private:
  std::map<std::uint32_t, FlowStats> flows_;
  FlowStats empty_;
  std::uint64_t total_packets_ = 0;
};

}  // namespace fatih::traffic
