#include "traffic/sources.hpp"

namespace fatih::traffic {

void send_datagram(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
                   std::uint32_t seq, std::uint32_t payload_bytes) {
  sim::PacketHeader hdr;
  hdr.src = src;
  hdr.dst = dst;
  hdr.flow_id = flow_id;
  hdr.seq = seq;
  hdr.proto = sim::Protocol::kUdp;
  sim::Packet p = net.make_packet(hdr, payload_bytes);
  if (net.is_router(src)) {
    net.router(src).originate(std::move(p));
  } else {
    net.host(src).send(std::move(p));
  }
}

void send_burst(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
                std::uint32_t first_seq, std::uint32_t count, std::uint32_t payload_bytes) {
  if (count == 0) return;
  if (net.is_router(src) || count == 1) {
    // Routers originate through the forwarding chain one packet at a time
    // (each may take a different route / filter decision).
    for (std::uint32_t i = 0; i < count; ++i) {
      send_datagram(net, src, dst, flow_id, first_seq + i, payload_bytes);
    }
    return;
  }
  sim::PacketHeader hdr;
  hdr.src = src;
  hdr.dst = dst;
  hdr.flow_id = flow_id;
  hdr.proto = sim::Protocol::kUdp;
  std::vector<sim::Packet> burst;
  burst.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    hdr.seq = first_seq + i;
    burst.push_back(net.make_packet(hdr, payload_bytes));
  }
  net.host(src).send_batch(burst);
}

// ---------------------------------------------------------------- CbrSource

CbrSource::CbrSource(sim::Network& net, Config config) : net_(net), config_(config) {
  // Timers live on the source node's simulator (its PoP shard when the
  // network is sharded, the lone simulator otherwise).
  net_.node_sim(config_.src).schedule_at(config_.start, [this] { tick(); });
}

void CbrSource::tick() {
  sim::Simulator& sim = net_.node_sim(config_.src);
  if (sim.now() >= config_.stop) return;
  const std::uint32_t burst = config_.packets_per_tick > 0 ? config_.packets_per_tick : 1;
  if (burst == 1) {
    send_datagram(net_, config_.src, config_.dst, config_.flow_id, seq_++, config_.payload_bytes);
  } else {
    send_burst(net_, config_.src, config_.dst, config_.flow_id, seq_, burst,
               config_.payload_bytes);
    seq_ += burst;
  }
  // tick() only ever runs as an event callback (ctor schedules the first
  // one), so the timer re-arms in place instead of re-installing itself.
  sim.rearm_current(util::Duration::from_seconds(1.0 / config_.rate_pps));
}

// ------------------------------------------------------------ PoissonSource

PoissonSource::PoissonSource(sim::Network& net, Config config)
    : net_(net), config_(config), rng_(net.rng().next_u64()) {
  net_.node_sim(config_.src).schedule_at(config_.start, [this] { tick(); });
}

void PoissonSource::tick() {
  sim::Simulator& sim = net_.node_sim(config_.src);
  if (sim.now() >= config_.stop) return;
  send_datagram(net_, config_.src, config_.dst, config_.flow_id, seq_++, config_.payload_bytes);
  const double gap = rng_.exponential(1.0 / config_.mean_rate_pps);
  sim.rearm_current(util::Duration::from_seconds(gap));
}

// -------------------------------------------------------------- OnOffSource

OnOffSource::OnOffSource(sim::Network& net, Config config)
    : net_(net), config_(config), rng_(net.rng().next_u64()) {
  net_.node_sim(config_.src).schedule_at(config_.start, [this] { enter_on(); });
}

void OnOffSource::enter_on() {
  sim::Simulator& sim = net_.node_sim(config_.src);
  if (sim.now() >= config_.stop) return;
  on_ = true;
  const double on_seconds = rng_.exponential(config_.mean_on.to_seconds());
  burst_end_ = sim.now() + util::Duration::from_seconds(on_seconds);
  sim.schedule_at(burst_end_, [this] { enter_off(); });
  tick();
}

void OnOffSource::enter_off() {
  sim::Simulator& sim = net_.node_sim(config_.src);
  on_ = false;
  if (sim.now() >= config_.stop) return;
  const double off_seconds = rng_.exponential(config_.mean_off.to_seconds());
  sim.schedule_in(util::Duration::from_seconds(off_seconds), [this] { enter_on(); });
}

void OnOffSource::tick() {
  sim::Simulator& sim = net_.node_sim(config_.src);
  if (!on_ || sim.now() >= config_.stop) return;
  send_datagram(net_, config_.src, config_.dst, config_.flow_id, seq_++, config_.payload_bytes);
  sim.schedule_in(util::Duration::from_seconds(1.0 / config_.on_rate_pps),
                  [this] { tick(); });
}

// ----------------------------------------------------------------- FlowSink

FlowSink::FlowSink(sim::Network& net, util::NodeId node) {
  net.node(node).add_local_handler(
      [this](const sim::Packet& p, util::NodeId, util::SimTime now) {
        auto& stats = flows_[p.hdr.flow_id];
        ++stats.packets;
        stats.bytes += p.size_bytes;
        stats.last_arrival = now;
        stats.sum_latency_seconds += (now - p.created).to_seconds();
        ++total_packets_;
      });
}

const FlowSink::FlowStats& FlowSink::flow(std::uint32_t flow_id) const {
  auto it = flows_.find(flow_id);
  return it != flows_.end() ? it->second : empty_;
}

}  // namespace fatih::traffic
