// Simplified TCP Reno.
//
// Protocol chi's evaluation (dissertation §6.4) depends on two TCP
// behaviours: (1) congestion control drives the bottleneck queue into
// bursty, genuinely congestive loss, and (2) the loss of a SYN costs a
// disproportionate multi-second retransmission timeout, which is what
// makes attack 4 ("target a host trying to open a connection by dropping
// SYN packets") devastating despite its tiny packet count (§6.1.1).
//
// This implementation models: three-way-handshake-less connection setup
// (SYN / SYN-ACK), slow start, congestion avoidance, fast retransmit on
// three duplicate ACKs, RTO with exponential backoff and a 3-second
// initial SYN timeout, and per-packet cumulative ACKs. Sequence numbers
// count MSS-sized packets, not bytes.
#pragma once

#include <cstdint>
#include <set>

#include "sim/network.hpp"
#include "util/time.hpp"

namespace fatih::traffic {

struct TcpConfig {
  std::uint32_t mss_bytes = 960;  ///< payload per data packet (+40B header)
  double initial_cwnd = 2.0;
  double max_cwnd = 1e9;  ///< packets; effectively the receive window
  util::Duration min_rto = util::Duration::seconds(1);
  util::Duration syn_rto = util::Duration::seconds(3);  ///< RFC 6298 initial RTO
  /// Packets to deliver; 0 = run until the experiment ends.
  std::uint64_t packets_to_send = 0;
};

/// One TCP connection: manages both the sender (at `src`) and the receiver
/// (at `dst`); all packets traverse the simulated network in between.
class TcpFlow {
 public:
  TcpFlow(sim::Network& net, util::NodeId src, util::NodeId dst, std::uint32_t flow_id,
          TcpConfig config);
  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  /// Schedules the SYN at `when`.
  void start(util::SimTime when);

  // --- observability -------------------------------------------------
  [[nodiscard]] bool connected() const { return established_; }
  [[nodiscard]] bool completed() const {
    return config_.packets_to_send > 0 && acked_ >= config_.packets_to_send;
  }
  /// Time from start() to the SYN-ACK arriving; infinity if never.
  [[nodiscard]] util::Duration connect_latency() const;
  [[nodiscard]] std::uint64_t packets_acked() const { return acked_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return acked_ * config_.mss_bytes; }
  [[nodiscard]] std::uint32_t syn_retransmits() const { return syn_retx_; }
  [[nodiscard]] std::uint32_t data_retransmits() const { return data_retx_; }
  [[nodiscard]] std::uint32_t timeouts() const { return rto_events_; }
  [[nodiscard]] double current_cwnd() const { return cwnd_; }
  /// Smoothed RTT estimate (seconds); 0 before the first sample.
  [[nodiscard]] double srtt_seconds() const { return srtt_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }
  /// Goodput in packets/second between start and the last ACK.
  [[nodiscard]] double goodput_pps() const;

 private:
  // Sender side.
  void send_syn();
  void on_sender_packet(const sim::Packet& p, util::SimTime now);
  void on_ack(std::uint32_t cum_ack, util::SimTime now);
  void try_send(util::SimTime now);
  void send_data(std::uint32_t seq, util::SimTime now, bool is_retx);
  void arm_rto(util::SimTime now);
  void on_rto();
  // Receiver side.
  void on_receiver_packet(const sim::Packet& p, util::SimTime now);
  void send_control(util::NodeId from, util::NodeId to, std::uint8_t flags, std::uint32_t seq,
                    std::uint32_t ack);

  sim::Network& net_;
  util::NodeId src_;
  util::NodeId dst_;
  std::uint32_t flow_id_;
  TcpConfig config_;

  // Sender state.
  bool started_ = false;
  bool established_ = false;
  util::SimTime start_time_;
  util::SimTime connect_time_;
  util::SimTime last_ack_time_;
  std::uint32_t next_seq_ = 0;     ///< next packet to (re)send
  std::uint32_t high_water_ = 0;   ///< highest sequence ever sent + 1
  std::uint64_t acked_ = 0;      ///< cumulative packets acked
  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  // RTT estimation (RFC 6298).
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  util::Duration rto_;
  sim::EventId rto_event_ = 0;
  bool rto_armed_ = false;
  // Timestamp of the in-flight RTT sample (seq, send time); invalidated on retx.
  std::uint32_t rtt_sample_seq_ = 0;
  util::SimTime rtt_sample_sent_;
  bool rtt_sample_valid_ = false;
  std::uint32_t syn_retx_ = 0;
  std::uint32_t data_retx_ = 0;
  std::uint32_t rto_events_ = 0;

  // Receiver state.
  std::uint32_t rcv_next_ = 0;  ///< lowest sequence not yet received
  std::set<std::uint32_t> out_of_order_;
};

}  // namespace fatih::traffic
