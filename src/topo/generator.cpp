#include "topo/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace fatih::topo {

namespace {

/// Core routers per PoP: the nodes allowed to carry inter-PoP links.
/// Small PoPs get one (the hub); big PoPs get one more per 16 members so
/// backbone fan-in spreads like Rocketfuel's multi-router PoPs.
std::uint32_t core_count(std::uint32_t pop_size) {
  return 1 + pop_size / 16;
}

/// Preferential pick: index into `degree` (offset..offset+count-1) with
/// probability proportional to degree+1. Deterministic given the rng
/// stream position.
std::uint32_t pick_preferential(util::Rng& rng, const std::vector<std::uint32_t>& degree,
                                std::uint32_t offset, std::uint32_t count) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) total += degree[offset + i] + 1;
  std::uint64_t ticket =
      static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t w = degree[offset + i] + 1;
    if (ticket < w) return offset + i;
    ticket -= w;
  }
  return offset + count - 1;  // unreachable; appeases -Werror return paths
}

}  // namespace

TopoParams sprintlink() {
  TopoParams p;
  p.routers = 315;
  p.links = 972;
  p.pops = 45;
  p.max_degree = 45;
  p.seed = 1044;  // Sprintlink's Rocketfuel AS number
  return p;
}

TopoParams ebone() {
  TopoParams p;
  p.routers = 87;
  p.links = 161;
  p.pops = 11;
  p.max_degree = 24;
  p.seed = 1755;  // EBONE's AS number
  return p;
}

bool validate(const TopoParams& p) {
  if (p.pops < 2 || p.routers < 4 * p.pops) return false;
  if (p.routers < p.pops + 3) return false;  // PoP 0 needs hub + owner + feeder
  if (p.inter_delay_ns <= p.intra_delay_ns || p.intra_delay_ns <= 0) return false;
  if (p.max_degree < 8) return false;
  if (p.bandwidth_bps <= 0 || p.queue_limit_bytes == 0) return false;
  // Spanning structure: per-PoP trees (routers - pops links) + hub ring
  // (pops links). The budget must cover it; anything above is chords/fill.
  return p.links >= p.routers;
}

GeneratedTopology generate(const TopoParams& p) {
  assert(validate(p));
  util::Rng rng(p.seed ^ 0x746f706f676e6eULL);  // "topogn" salt

  GeneratedTopology out;
  out.params = p;

  // --- PoP sizes: a deterministic heavy-ish split. PoP 0 and 1 are the
  // big gateway PoPs (Rocketfuel maps concentrate routers in a few metro
  // areas); the rest share the remainder evenly with rng jitter.
  const std::uint32_t n = p.routers;
  std::vector<std::uint32_t> pop_size(p.pops, 0);
  std::uint32_t assigned = 0;
  for (std::uint32_t pop = 0; pop < p.pops; ++pop) {
    const std::uint32_t remaining_pops = p.pops - pop;
    const std::uint32_t remaining = n - assigned;
    std::uint32_t base = remaining / remaining_pops;
    if (pop == 0 || pop == 1) base += base / 2;  // oversized gateway PoPs
    if (base < 3) base = 3;
    std::uint32_t jitter = 0;
    if (pop + 1 < p.pops && base > 4) {
      jitter = static_cast<std::uint32_t>(rng.uniform_int(0, base / 4));
    }
    std::uint32_t size = base + jitter;
    // Leave at least 3 routers for every later PoP.
    const std::uint32_t reserve = 3 * (remaining_pops - 1);
    if (size + reserve > remaining) size = remaining - reserve;
    if (pop + 1 == p.pops) size = remaining;
    pop_size[pop] = size;
    assigned += size;
  }

  out.pop_of.resize(n);
  std::vector<std::uint32_t> pop_offset(p.pops, 0);
  {
    std::uint32_t off = 0;
    for (std::uint32_t pop = 0; pop < p.pops; ++pop) {
      pop_offset[pop] = off;
      for (std::uint32_t i = 0; i < pop_size[pop]; ++i) out.pop_of[off + i] = pop;
      out.pop_hub.push_back(off);
      off += pop_size[pop];
    }
  }

  std::vector<std::uint32_t> degree(n, 0);
  // De-duplication bitmap keyed (min,max); ~n^2/2 bits is fine at the
  // scales involved (thousands of routers).
  std::vector<bool> present(static_cast<std::size_t>(n) * n, false);
  auto has_link = [&](util::NodeId a, util::NodeId b) {
    return present[static_cast<std::size_t>(a) * n + b];
  };
  auto add_link = [&](util::NodeId a, util::NodeId b, bool inter) {
    assert(a != b && !has_link(a, b));
    present[static_cast<std::size_t>(a) * n + b] = true;
    present[static_cast<std::size_t>(b) * n + a] = true;
    out.links.push_back(GenLink{a, b, inter});
    ++degree[a];
    ++degree[b];
  };

  // --- Intra-PoP trees: node j attaches to an earlier node of its PoP,
  // preferentially by degree (hubs grow heavy tails). The first member of
  // PoP 0 is forced onto the hub and the second onto the first, giving the
  // chi triple feeder -> owner -> hub with every neighbor of the owner
  // inside PoP 0 (members never carry inter-PoP links).
  for (std::uint32_t pop = 0; pop < p.pops; ++pop) {
    const std::uint32_t off = pop_offset[pop];
    const std::uint32_t size = pop_size[pop];
    const std::uint32_t cores = std::min(core_count(size), size);
    for (std::uint32_t j = 1; j < size; ++j) {
      const util::NodeId node = off + j;
      util::NodeId parent;
      if (pop == 0 && j == cores) {
        parent = off;  // chi owner hangs directly off the hub
      } else if (pop == 0 && j == cores + 1) {
        parent = off + cores;  // chi feeder hangs off the owner
      } else {
        parent = pick_preferential(rng, degree, off, j);
        if (degree[parent] >= p.max_degree) parent = off + j - 1;
      }
      add_link(node, parent, false);
    }
    if (pop == 0) {
      out.chi_peer = off;
      out.chi_owner = off + cores;
      out.chi_feed = off + cores + 1;
    }
  }

  // --- Backbone: hub ring for guaranteed connectivity, then preferential
  // chords between core routers of distinct PoPs until ~15% of the budget
  // is inter-PoP (Rocketfuel backbones are sparse relative to metro mesh).
  for (std::uint32_t pop = 0; pop < p.pops; ++pop) {
    add_link(out.pop_hub[pop], out.pop_hub[(pop + 1) % p.pops], true);
  }
  const std::uint32_t inter_target =
      std::max<std::uint32_t>(p.pops + p.pops / 4, p.links * 3 / 20);
  std::uint32_t inter_built = p.pops;
  std::uint32_t attempts = 0;
  while (inter_built < inter_target && out.links.size() < p.links && attempts < 16 * p.links) {
    ++attempts;
    const std::uint32_t pa = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(p.pops) - 1));
    const std::uint32_t pb = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(p.pops) - 1));
    if (pa == pb) continue;
    const std::uint32_t ca = std::min(core_count(pop_size[pa]), pop_size[pa]);
    const std::uint32_t cb = std::min(core_count(pop_size[pb]), pop_size[pb]);
    const util::NodeId a = pick_preferential(rng, degree, pop_offset[pa], ca);
    const util::NodeId b = pick_preferential(rng, degree, pop_offset[pb], cb);
    if (has_link(a, b) || degree[a] >= p.max_degree || degree[b] >= p.max_degree) continue;
    add_link(a, b, true);
    ++inter_built;
  }

  // --- Fill: intra-PoP cross links (metro redundancy) until the duplex
  // budget is met. Preferential endpoints inside a size-weighted PoP; the
  // chi owner and feeder are kept out so their neighbor sets stay exactly
  // the designated triple plus tree children.
  attempts = 0;
  while (out.links.size() < p.links && attempts < 64 * p.links) {
    ++attempts;
    const std::uint32_t ticket =
        static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const std::uint32_t pop = out.pop_of[ticket];
    const std::uint32_t off = pop_offset[pop];
    const std::uint32_t size = pop_size[pop];
    if (size < 4) continue;
    const util::NodeId a = pick_preferential(rng, degree, off, size);
    const util::NodeId b = pick_preferential(rng, degree, off, size);
    if (a == b || has_link(a, b)) continue;
    if (degree[a] >= p.max_degree || degree[b] >= p.max_degree) continue;
    if (a == out.chi_owner || b == out.chi_owner || a == out.chi_feed || b == out.chi_feed) {
      continue;
    }
    add_link(a, b, false);
  }

  assert(out.connected());
  return out;
}

std::vector<std::uint32_t> GeneratedTopology::degrees() const {
  std::vector<std::uint32_t> deg(pop_of.size(), 0);
  for (const GenLink& l : links) {
    ++deg[l.a];
    ++deg[l.b];
  }
  return deg;
}

std::array<std::uint32_t, 6> GeneratedTopology::degree_histogram() const {
  std::array<std::uint32_t, 6> h{};
  for (std::uint32_t d : degrees()) {
    if (d <= 1) {
      ++h[0];
    } else if (d == 2) {
      ++h[1];
    } else if (d <= 4) {
      ++h[2];
    } else if (d <= 8) {
      ++h[3];
    } else if (d <= 16) {
      ++h[4];
    } else {
      ++h[5];
    }
  }
  return h;
}

bool GeneratedTopology::connected() const {
  const std::size_t n = pop_of.size();
  if (n == 0) return true;
  std::vector<std::vector<util::NodeId>> adj(n);
  for (const GenLink& l : links) {
    adj[l.a].push_back(l.b);
    adj[l.b].push_back(l.a);
  }
  std::vector<bool> seen(n, false);
  std::vector<util::NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const util::NodeId v = stack.back();
    stack.pop_back();
    for (util::NodeId w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == n;
}

std::uint64_t GeneratedTopology::digest() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_word(h, params.routers);
  h = util::fnv1a64_word(h, params.links);
  h = util::fnv1a64_word(h, params.pops);
  h = util::fnv1a64_word(h, params.max_degree);
  h = util::fnv1a64_word(h, params.seed);
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(params.intra_delay_ns));
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(params.inter_delay_ns));
  for (std::uint32_t pop : pop_of) h = util::fnv1a64_word(h, pop);
  for (const GenLink& l : links) {
    h = util::fnv1a64_word(h, (static_cast<std::uint64_t>(l.a) << 33) |
                                  (static_cast<std::uint64_t>(l.b) << 1) |
                                  (l.inter ? 1u : 0u));
  }
  for (util::NodeId hub : pop_hub) h = util::fnv1a64_word(h, hub);
  h = util::fnv1a64_word(h, chi_owner);
  h = util::fnv1a64_word(h, chi_peer);
  h = util::fnv1a64_word(h, chi_feed);
  return h;
}

}  // namespace fatih::topo
