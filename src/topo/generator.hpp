// Seeded, degree-matched ISP topology generator (Rocketfuel scale).
//
// The paper's graph-analysis results (Figs. 5.2/5.4) are measured on
// Rocketfuel-derived maps: Sprintlink (315 routers / 972 links, 45 PoPs)
// and EBONE (87 / 161, 11 PoPs). This module generates deterministic
// PoP-clustered graphs of that shape at any scale: contiguous node-id
// ranges per PoP, a preferential-attachment tree inside each PoP (the
// heavy-tailed access/aggregation degrees Rocketfuel observes), a hub
// backbone ring plus preferential chords between PoPs, and intra-PoP fill
// links up to the target link count.
//
// Two structural guarantees are load-bearing for the sharded engine
// (src/sim/shard.hpp):
//   1. Inter-PoP links exist only between the per-PoP *core* routers, and
//      every inter-PoP link has the same propagation delay
//      `inter_delay_ns` — the conservative lookahead window. Core routers
//      are the first `core_count(pop)` ids of each PoP.
//   2. A designated chi bottleneck (chi_owner -> chi_peer, fed by
//      chi_feed) sits entirely inside PoP 0 with every neighbor of
//      chi_owner also in PoP 0, so all of Protocol chi's taps fire on one
//      shard.
//
// Same params (including seed) => byte-identical topology, pinned by
// digest() in tests/topo/.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::topo {

/// Generator parameters. Everything that shapes the graph is here, so the
/// scenario codec can round-trip a topology as a handful of integers.
struct TopoParams {
  std::uint32_t routers = 87;
  std::uint32_t links = 161;  ///< duplex link target (>= spanning structure)
  std::uint32_t pops = 11;
  std::uint32_t max_degree = 45;  ///< per-node cap, matches Rocketfuel's hubs
  std::uint64_t seed = 1;
  std::int64_t intra_delay_ns = 200'000;    ///< 0.2 ms metro links
  std::int64_t inter_delay_ns = 2'000'000;  ///< 2 ms backbone links = lookahead
  double bandwidth_bps = 1e8;
  std::uint32_t queue_limit_bytes = 64000;
};

/// One duplex link. `inter` marks a backbone (PoP-crossing) link, which
/// carries `inter_delay_ns` and a higher routing metric.
struct GenLink {
  util::NodeId a;
  util::NodeId b;
  bool inter;
};

/// The generated graph plus the designated structure the scenario layer
/// keys off (per-PoP hubs, the chi bottleneck triple).
struct GeneratedTopology {
  TopoParams params;
  std::vector<std::uint32_t> pop_of;  ///< node id -> PoP index
  std::vector<GenLink> links;
  std::vector<util::NodeId> pop_hub;  ///< first core router of each PoP
  util::NodeId chi_owner = util::kInvalidNode;  ///< queue owner, PoP 0, non-core
  util::NodeId chi_peer = util::kInvalidNode;   ///< adjacent peer (PoP 0 hub)
  util::NodeId chi_feed = util::kInvalidNode;   ///< feeder behind chi_owner

  [[nodiscard]] std::uint32_t routers() const {
    return static_cast<std::uint32_t>(pop_of.size());
  }
  [[nodiscard]] std::uint32_t pops() const {
    return static_cast<std::uint32_t>(pop_hub.size());
  }

  /// Node degrees (duplex links counted once per endpoint).
  [[nodiscard]] std::vector<std::uint32_t> degrees() const;
  /// Histogram bucketed as deg 1, 2, 3-4, 5-8, 9-16, 17+ — the coarse
  /// Rocketfuel shape the property tests pin.
  [[nodiscard]] std::array<std::uint32_t, 6> degree_histogram() const;
  [[nodiscard]] bool connected() const;
  /// Minimum propagation delay over PoP-crossing links — the sharded
  /// engine's conservative lookahead. Uniform by construction.
  [[nodiscard]] util::Duration min_inter_pop_delay() const {
    return util::Duration::nanos(params.inter_delay_ns);
  }
  /// FNV-1a over every structural byte (params, pops, links, designated
  /// nodes); the seed-stability tests pin this.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Deterministically generates a topology from `p`. Aborts (assert) on
/// degenerate parameters; use validate() first for untrusted input.
[[nodiscard]] GeneratedTopology generate(const TopoParams& p);

/// True iff the parameters describe a generatable graph (enough routers
/// per PoP, link budget at least the spanning structure, inter delay
/// strictly greater than intra so the lookahead window is non-trivial).
[[nodiscard]] bool validate(const TopoParams& p);

/// Rocketfuel presets (dissertation Table 5.x): Sprintlink 315/972/45 and
/// EBONE 87/161/11.
[[nodiscard]] TopoParams sprintlink();
[[nodiscard]] TopoParams ebone();

}  // namespace fatih::topo
