#include "routing/segments.hpp"

#include <algorithm>
#include <set>

namespace fatih::routing {

bool PathSegment::contains(util::NodeId r) const {
  return std::find(nodes_.begin(), nodes_.end(), r) != nodes_.end();
}

bool PathSegment::is_end(util::NodeId r) const {
  return !nodes_.empty() && (nodes_.front() == r || nodes_.back() == r);
}

bool PathSegment::within(const Path& path) const {
  if (nodes_.empty() || nodes_.size() > path.size()) return false;
  return std::search(path.begin(), path.end(), nodes_.begin(), nodes_.end()) != path.end();
}

std::string PathSegment::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ",";
    out += util::node_name(nodes_[i]);
  }
  out += ">";
  return out;
}

std::size_t PathSegmentHash::operator()(const PathSegment& s) const {
  // FNV-1a over the node ids.
  std::size_t h = 1469598103934665603ULL;
  for (util::NodeId n : s.nodes()) {
    h ^= n;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<PathSegment> windows(const Path& path, std::size_t x) {
  std::vector<PathSegment> out;
  if (x == 0 || path.size() < x) return out;
  for (std::size_t i = 0; i + x <= path.size(); ++i) {
    out.emplace_back(std::vector<util::NodeId>(path.begin() + static_cast<std::ptrdiff_t>(i),
                                               path.begin() + static_cast<std::ptrdiff_t>(i + x)));
  }
  return out;
}

SegmentIndex::SegmentIndex(const std::vector<Path>& used_paths, std::size_t k) : k_(k) {
  // Ordered sets: iteration below is in lexicographic segment order, so the
  // assigned vectors are deterministically sorted with no post-pass (the
  // unordered_set + sort this replaces left a hash-ordered walk in the
  // build, which fatih-lint's no-unordered-iteration rule bans).
  std::set<PathSegment> pi2;
  std::set<PathSegment> pik2;
  const std::size_t target = k + 2;

  for (const Path& path : used_paths) {
    if (path.size() < 3) continue;
    if (path.size() >= target) {
      // Pi2 monitors every (k+2)-window; these cover all interior routers.
      for (auto& w : windows(path, target)) pi2.insert(std::move(w));
    } else {
      // Shorter whole paths: both ends are terminal routers.
      pi2.insert(PathSegment(path));
    }
    // Pi(k+2): every x-segment, 3 <= x <= k+2. Each is monitored by its two
    // end routers.
    for (std::size_t x = 3; x <= target; ++x) {
      for (auto& w : windows(path, x)) pik2.insert(std::move(w));
    }
  }

  pi2_.assign(pi2.begin(), pi2.end());
  pik2_.assign(pik2.begin(), pik2.end());
}

std::vector<PathSegment> SegmentIndex::pr_pi2(util::NodeId r) const {
  std::vector<PathSegment> out;
  for (const auto& seg : pi2_) {
    if (seg.contains(r)) out.push_back(seg);
  }
  return out;
}

std::vector<PathSegment> SegmentIndex::pr_pik2(util::NodeId r) const {
  std::vector<PathSegment> out;
  for (const auto& seg : pik2_) {
    if (seg.is_end(r)) out.push_back(seg);
  }
  return out;
}

}  // namespace fatih::routing
