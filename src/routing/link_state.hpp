// Distributed link-state routing over the simulated network.
//
// A small OSPF analogue, faithful to the pieces the detection system
// depends on (dissertation §4.1, §5.3.1):
//   * hello-based neighbor discovery,
//   * sequence-numbered, signed LSAs flooded robustly (Perlman §3.7 style:
//     re-flood on every interface except the incoming one, duplicate
//     suppression by (origin, seq)),
//   * per-router SPF with the Zebra-style spf_delay / spf_hold timers that
//     shape the Fatih reaction time in Fig. 5.7,
//   * suspicion alerts: a detection engine calls announce_suspicion(); the
//     signed alert is flooded, and every correct router excludes the
//     suspected path-segment from its routing fabric via policy routes
//     (§2.4.3 response).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/mac.hpp"
#include "routing/graph.hpp"
#include "routing/segments.hpp"
#include "sim/network.hpp"
#include "util/time.hpp"

namespace fatih::routing {

/// Control payload kinds in the 0x10xx range (routing subsystem).
inline constexpr std::uint16_t kKindHello = 0x1001;
inline constexpr std::uint16_t kKindLsa = 0x1002;
inline constexpr std::uint16_t kKindAlert = 0x1003;

/// Periodic neighbor-discovery beacon.
struct HelloPayload final : sim::ControlPayload {
  util::NodeId from = util::kInvalidNode;
  [[nodiscard]] std::uint16_t kind() const override { return kKindHello; }
};

/// A link-state advertisement: origin's neighbor list, signed.
struct LsaPayload final : sim::ControlPayload {
  util::NodeId origin = util::kInvalidNode;
  std::uint32_t seq = 0;
  std::vector<Topology::Edge> neighbors;
  crypto::SignedEnvelope envelope;  ///< signature over (origin, seq, neighbors)
  [[nodiscard]] std::uint16_t kind() const override { return kKindLsa; }
};

/// A flooded failure-detection announcement: "reporter suspects segment".
struct AlertPayload final : sim::ControlPayload {
  util::NodeId reporter = util::kInvalidNode;
  PathSegment segment;
  util::TimeInterval interval;
  crypto::SignedEnvelope envelope;  ///< signature over (reporter, segment, interval)
  [[nodiscard]] std::uint16_t kind() const override { return kKindAlert; }
};

struct LinkStateConfig {
  util::Duration hello_interval = util::Duration::seconds(10);
  /// A neighbor not heard from for this long is declared dead and its
  /// adjacency withdrawn (OSPF RouterDeadInterval; default 4x hello).
  util::Duration dead_interval = util::Duration::seconds(40);
  /// Delay from a triggering event to SPF (Zebra default 5 s).
  util::Duration spf_delay = util::Duration::seconds(5);
  /// Minimum spacing between consecutive SPF runs (Zebra default 10 s).
  util::Duration spf_hold = util::Duration::seconds(10);
  /// Minimum spacing between LSA originations of one router.
  util::Duration lsa_min_interval = util::Duration::seconds(1);
  /// How long an applied alert's duplicate-suppression record outlives the
  /// end of the alert's accusation interval before being evicted.
  util::Duration alert_memory = util::Duration::seconds(300);
};

/// The routing daemon collection: one per-router state machine, driven by
/// the shared simulator.
class LinkStateRouting {
 public:
  LinkStateRouting(sim::Network& net, const crypto::KeyRegistry& keys, LinkStateConfig config);

  /// Begins hello emission and neighbor-liveness scanning on every
  /// router. Hosts neither send hellos nor originate LSAs: routers
  /// advertise host-attached interfaces unconditionally as stub links.
  void start();

  /// Called by a local detection engine at `reporter`: floods a signed
  /// alert and applies the exclusion locally.
  void announce_suspicion(util::NodeId reporter, const PathSegment& segment,
                          util::TimeInterval interval);

  /// Per-router introspection (for tests and the Fig. 5.7 bench).
  [[nodiscard]] bool converged(util::NodeId r) const;
  [[nodiscard]] std::size_t spf_runs(util::NodeId r) const;
  [[nodiscard]] const std::vector<PathSegment>& banned_segments(util::NodeId r) const;
  [[nodiscard]] const Topology& topology_view(util::NodeId r) const;

  /// Reconvergence introspection: when router r's installed routes last
  /// actually changed (not merely when SPF ran), and how many times they
  /// have changed. Lets experiments measure reconvergence time as
  /// max over routers of (last_route_change - failure time).
  [[nodiscard]] util::SimTime last_route_change(util::NodeId r) const;
  [[nodiscard]] std::size_t route_changes(util::NodeId r) const;
  /// Current neighbor set (adjacencies that are up) of router r.
  [[nodiscard]] const std::set<util::NodeId>& neighbors(util::NodeId r) const;
  /// Size of the alert duplicate-suppression memory (bounded by eviction).
  [[nodiscard]] std::size_t seen_alert_count(util::NodeId r) const;

  /// Invoked after a router installs routes that differ from what it had
  /// before (an actual routing-table change, not every SPF run). Hooks
  /// accumulate: the epoch keeper and an experiment logger can coexist.
  using RouteChangeHook = std::function<void(util::NodeId router, util::SimTime when)>;
  void add_route_change_hook(RouteChangeHook hook) {
    route_change_hooks_.push_back(std::move(hook));
  }
  void set_route_change_hook(RouteChangeHook hook) { add_route_change_hook(std::move(hook)); }

  /// Invoked when a router accepts an alert (before the SPF that applies it).
  using AlertHook = std::function<void(util::NodeId router, const AlertPayload&, util::SimTime)>;
  void set_alert_hook(AlertHook hook) { alert_hook_ = std::move(hook); }

  /// Protocol-fault injection: router r's daemon stops re-flooding LSAs
  /// and alerts (it still receives). Robust flooding must survive this as
  /// long as the good-path condition holds (§3.7).
  void suppress_flooding_at(util::NodeId r) { suppressed_.insert(r); }

 private:
  struct Daemon {
    util::NodeId id = util::kInvalidNode;
    bool is_router = false;
    std::set<util::NodeId> neighbors_up;
    /// Last hello heard from each live neighbor, for dead-interval expiry.
    std::map<util::NodeId, util::SimTime> last_hello;
    // LSDB: origin -> (seq, neighbor list).
    std::map<util::NodeId, LsaPayload> lsdb;
    std::uint32_t own_seq = 0;
    util::SimTime last_lsa = util::SimTime::origin() - util::Duration::seconds(3600);
    bool lsa_pending = false;
    // SPF scheduling.
    bool spf_scheduled = false;
    bool spf_ran_once = false;
    util::SimTime last_spf = util::SimTime::origin() - util::Duration::seconds(3600);
    std::size_t spf_count = 0;
    // Reconvergence introspection: fingerprint of the installed tables and
    // when it last changed.
    std::uint64_t route_signature = 0;
    util::SimTime last_route_change = util::SimTime::origin();
    std::size_t route_change_count = 0;
    // Response state. seen_alerts maps the duplicate-suppression key to
    // the alert's interval end so old records can be evicted by age.
    std::vector<PathSegment> banned;
    std::map<std::pair<util::NodeId, PathSegment>, util::SimTime> seen_alerts;
    Topology view;
  };

  void send_hello(util::NodeId n);
  void scan_neighbors(util::NodeId n);
  void on_control(util::NodeId n, const sim::Packet& p, util::NodeId prev);
  void originate_lsa(util::NodeId n);
  /// Database exchange on a newly formed adjacency: unicasts n's whole
  /// LSDB to `peer` so a restarted router relearns the fabric.
  void synchronize_lsdb(util::NodeId n, util::NodeId peer);
  void flood(util::NodeId n, std::shared_ptr<const sim::ControlPayload> payload,
             std::uint32_t bytes, util::NodeId except_peer);
  void schedule_spf(util::NodeId n);
  void run_spf(util::NodeId n);
  void accept_alert(util::NodeId n, const AlertPayload& alert);
  /// Remembers (and ages out) an alert's duplicate-suppression record.
  /// Returns false if the alert was already known.
  bool remember_alert(Daemon& d, const AlertPayload& alert);
  /// Soft-state reset after a router restart (keeps own_seq monotonic so
  /// fresh LSAs supersede pre-crash ones everywhere).
  void reset_soft_state(util::NodeId n);

  [[nodiscard]] static std::vector<std::byte> lsa_bytes(const LsaPayload& lsa);
  [[nodiscard]] static std::vector<std::byte> alert_bytes(const AlertPayload& alert);

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  LinkStateConfig config_;
  std::set<util::NodeId> suppressed_;
  std::vector<Daemon> daemons_;
  std::vector<RouteChangeHook> route_change_hooks_;
  AlertHook alert_hook_;
};

}  // namespace fatih::routing
