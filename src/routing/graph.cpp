#include "routing/graph.hpp"

#include <algorithm>

#include "sim/network.hpp"

namespace fatih::routing {

void Topology::ensure_node(util::NodeId id) {
  if (id >= adj_.size()) adj_.resize(id + 1);
}

void Topology::add_edge(util::NodeId from, util::NodeId to, std::uint32_t metric) {
  ensure_node(std::max(from, to));
  auto& edges = adj_[from];
  if (std::any_of(edges.begin(), edges.end(), [to](const Edge& e) { return e.to == to; })) {
    return;
  }
  edges.push_back(Edge{to, metric});
}

void Topology::add_duplex(util::NodeId a, util::NodeId b, std::uint32_t metric) {
  add_edge(a, b, metric);
  add_edge(b, a, metric);
}

std::size_t Topology::edge_count() const {
  std::size_t n = 0;
  for (const auto& edges : adj_) n += edges.size();
  return n;
}

std::span<const Topology::Edge> Topology::neighbors(util::NodeId n) const {
  if (n >= adj_.size()) return {};
  return adj_[n];
}

bool Topology::has_edge(util::NodeId from, util::NodeId to) const {
  for (const Edge& e : neighbors(from)) {
    if (e.to == to) return true;
  }
  return false;
}

std::uint32_t Topology::metric(util::NodeId from, util::NodeId to) const {
  for (const Edge& e : neighbors(from)) {
    if (e.to == to) return e.metric;
  }
  return 0;
}

std::size_t Topology::degree(util::NodeId n) const { return neighbors(n).size(); }

Topology Topology::from_network(const sim::Network& net) {
  Topology t;
  if (net.node_count() > 0) t.ensure_node(static_cast<util::NodeId>(net.node_count() - 1));
  for (const auto& adj : net.adjacencies()) {
    // Live view: links that are admin-down or touch a crashed node are not
    // part of the topology (identical to the old behavior when nothing has
    // failed).
    if (!net.link_usable(adj.from, adj.to)) continue;
    t.add_edge(adj.from, adj.to, adj.metric);
  }
  return t;
}

}  // namespace fatih::routing
