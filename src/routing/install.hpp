// Installs computed routes into the simulated routers.
//
// Most detection experiments use a static, pre-converged routing fabric
// (the dissertation's stable-state assumption, §4.1); the distributed
// link-state protocol in routing/link_state.hpp is used when routing
// dynamics matter (the Fatih timeline, Fig. 5.7).
#pragma once

#include "routing/spf.hpp"

namespace fatih::sim {
class Network;
}

namespace fatih::routing {

/// Writes every router's next hops from `tables` into the Network.
void install_static_routes(sim::Network& net, const RoutingTables& tables);

/// Writes (prev, dst) policy routes from `routes` into the Network.
/// Pairs with no compliant route get an explicit drop entry so traffic is
/// not silently rerouted through a banned segment.
void install_policy_routes(sim::Network& net, const PolicyRoutes& routes);

}  // namespace fatih::routing
