#include "routing/disjoint.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace fatih::routing {

namespace {

// Node-split max-flow: each vertex v becomes v_in (2v) and v_out (2v+1)
// joined by a unit-capacity internal arc; each edge (u,v) becomes
// u_out -> v_in with unit capacity. Unit-capacity BFS augmentation
// (Edmonds-Karp) is plenty for the path counts we need.
struct FlowGraph {
  struct Arc {
    std::uint32_t to;
    std::int32_t cap;
    std::uint32_t rev;  // index of the reverse arc in adj[to]
  };
  std::vector<std::vector<Arc>> adj;

  explicit FlowGraph(std::size_t nodes) : adj(nodes) {}

  void add_arc(std::uint32_t from, std::uint32_t to, std::int32_t cap) {
    adj[from].push_back(Arc{to, cap, static_cast<std::uint32_t>(adj[to].size())});
    adj[to].push_back(Arc{from, 0, static_cast<std::uint32_t>(adj[from].size() - 1)});
  }

  /// One BFS augmentation of unit flow; returns false when none exists.
  bool augment(std::uint32_t s, std::uint32_t t) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> parent(adj.size(),
                                                                {UINT32_MAX, UINT32_MAX});
    std::queue<std::uint32_t> q;
    q.push(s);
    parent[s] = {s, UINT32_MAX};
    while (!q.empty() && parent[t].first == UINT32_MAX) {
      const auto u = q.front();
      q.pop();
      for (std::uint32_t i = 0; i < adj[u].size(); ++i) {
        const Arc& a = adj[u][i];
        if (a.cap <= 0 || parent[a.to].first != UINT32_MAX) continue;
        parent[a.to] = {u, i};
        q.push(a.to);
      }
    }
    if (parent[t].first == UINT32_MAX) return false;
    for (std::uint32_t v = t; v != s;) {
      const auto [u, i] = parent[v];
      Arc& a = adj[u][i];
      a.cap -= 1;
      adj[a.to][a.rev].cap += 1;
      v = u;
    }
    return true;
  }
};

constexpr std::uint32_t in_node(util::NodeId v) { return 2 * v; }
constexpr std::uint32_t out_node(util::NodeId v) { return 2 * v + 1; }

FlowGraph build_flow(const Topology& topo, util::NodeId src, util::NodeId dst) {
  FlowGraph g(2 * topo.node_count());
  for (util::NodeId v = 0; v < topo.node_count(); ++v) {
    // Endpoints carry unbounded internal capacity; interior vertices 1.
    const std::int32_t cap = (v == src || v == dst) ? 1 << 20 : 1;
    g.add_arc(in_node(v), out_node(v), cap);
    for (const auto& e : topo.neighbors(v)) {
      g.add_arc(out_node(v), in_node(e.to), 1);
    }
  }
  return g;
}

}  // namespace

std::vector<Path> disjoint_paths(const Topology& topo, util::NodeId src, util::NodeId dst,
                                 std::size_t want) {
  std::vector<Path> out;
  if (src >= topo.node_count() || dst >= topo.node_count() || src == dst || want == 0) {
    return out;
  }
  FlowGraph g = build_flow(topo, src, dst);
  std::size_t flow = 0;
  while (flow < want && g.augment(out_node(src), in_node(dst))) ++flow;

  // Decompose the flow into paths: walk saturated edge arcs from src,
  // consuming them so each path uses distinct arcs.
  for (std::size_t p = 0; p < flow; ++p) {
    Path path{src};
    util::NodeId cur = src;
    std::size_t guard = 0;
    while (cur != dst && guard++ <= topo.node_count()) {
      bool advanced = false;
      for (auto& arc : g.adj[out_node(cur)]) {
        // A forward edge arc carried flow iff its residual reverse arc has
        // positive capacity (cap moved to the reverse side). Skip the
        // residual of the node's own internal arc (to/2 == cur).
        if (arc.to % 2 != 0 || arc.to / 2 == cur) continue;
        auto& rev = g.adj[arc.to][arc.rev];
        if (rev.cap <= 0) continue;
        rev.cap -= 1;  // consume this unit so other paths skip it
        cur = static_cast<util::NodeId>(arc.to / 2);
        path.push_back(cur);
        advanced = true;
        break;
      }
      if (!advanced) break;
    }
    if (cur == dst) out.push_back(std::move(path));
  }
  return out;
}

std::size_t vertex_connectivity(const Topology& topo, util::NodeId src, util::NodeId dst) {
  if (src >= topo.node_count() || dst >= topo.node_count() || src == dst) return 0;
  FlowGraph g = build_flow(topo, src, dst);
  std::size_t flow = 0;
  while (g.augment(out_node(src), in_node(dst))) ++flow;
  return flow;
}

}  // namespace fatih::routing
