// Shortest-path-first routing computations.
//
// All routers compute next hops from the same deterministic rule, so
// hop-by-hop forwarding yields a single consistent loop-free path per
// (source, destination) pair — the dissertation's assumption that "a link
// state routing protocol chooses only one path between any two routers"
// (§5.1.1) with deterministic tie-breaking standing in for the vendors'
// deterministic ECMP hash (§4.1).
//
// The policy-aware variant computes routes that avoid suspected
// path-segments (the response mechanism, §2.4.3/§5.3.1): forwarding state
// is keyed by (previous hop, destination), which is exactly enough to
// avoid any banned segment of length <= 3. Longer banned segments are
// handled conservatively by banning each interior length-3 window.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "routing/graph.hpp"
#include "routing/segments.hpp"

namespace fatih::routing {

/// Infinite distance marker.
inline constexpr std::uint64_t kUnreachable = std::numeric_limits<std::uint64_t>::max();

/// Distances from every node to one destination, plus deterministic next
/// hops (lowest-cost neighbor; ties broken by smaller neighbor id).
struct DestinationRoutes {
  util::NodeId dst = util::kInvalidNode;
  std::vector<std::uint64_t> dist;                 ///< dist[n] = cost n -> dst
  std::vector<util::NodeId> next_hop;              ///< next_hop[n]; kInvalidNode at dst/unreachable
};

/// Runs reverse Dijkstra toward `dst` (metrics are symmetric in this
/// system, so neighbors(n) is used directly).
[[nodiscard]] DestinationRoutes compute_routes_to(const Topology& topo, util::NodeId dst);

/// Full routing state: one DestinationRoutes per destination.
class RoutingTables {
 public:
  explicit RoutingTables(const Topology& topo);

  [[nodiscard]] const DestinationRoutes& to(util::NodeId dst) const { return per_dst_.at(dst); }
  [[nodiscard]] std::size_t node_count() const { return per_dst_.size(); }

  /// The unique path src -> dst by following next hops; empty if
  /// unreachable. Includes both endpoints.
  [[nodiscard]] Path path(util::NodeId src, util::NodeId dst) const;

  /// Every in-use path among the given terminal nodes (ordered pairs).
  [[nodiscard]] std::vector<Path> all_paths(const std::vector<util::NodeId>& terminals) const;

 private:
  std::vector<DestinationRoutes> per_dst_;
};

/// Policy routes that avoid banned path-segments.
///
/// State is (prev, node): the cost-to-destination of a packet sitting at
/// `node` having arrived from `prev`. A banned segment <a,b,c> forbids the
/// transition b->c for packets arriving from a; a banned segment <a,b>
/// forbids the directed link a->b outright.
class PolicyRoutes {
 public:
  /// `banned` segments of length 2 or 3 are enforced exactly; longer
  /// segments are decomposed into their length-3 windows (conservative:
  /// strictly more traffic is diverted, never less).
  PolicyRoutes(const Topology& topo, const std::vector<PathSegment>& banned);

  /// Next hop at `node` toward `dst` for a packet that arrived from
  /// `prev`; for locally-originated packets pass prev == node.
  /// nullopt when no compliant route exists.
  [[nodiscard]] std::optional<util::NodeId> next_hop(util::NodeId prev, util::NodeId node,
                                                     util::NodeId dst) const;

  /// The path taken from src to dst under these policies (empty if none).
  [[nodiscard]] Path path(util::NodeId src, util::NodeId dst) const;

 private:
  struct StateKey {
    util::NodeId prev;
    util::NodeId node;
    auto operator<=>(const StateKey&) const = default;
  };

  void compute_for_destination(const Topology& topo, util::NodeId dst);
  [[nodiscard]] bool link_banned(util::NodeId a, util::NodeId b) const;
  [[nodiscard]] bool triple_banned(util::NodeId a, util::NodeId b, util::NodeId c) const;

  std::size_t n_ = 0;
  std::set<std::pair<util::NodeId, util::NodeId>> banned_links_;
  std::set<std::tuple<util::NodeId, util::NodeId, util::NodeId>> banned_triples_;
  // next_[dst][prev * n + node] = next hop (kInvalidNode if none).
  std::vector<std::vector<util::NodeId>> next_;
};

}  // namespace fatih::routing
