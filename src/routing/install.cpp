#include "routing/install.hpp"

#include "sim/network.hpp"

namespace fatih::routing {

void install_static_routes(sim::Network& net, const RoutingTables& tables) {
  for (util::NodeId r = 0; r < net.node_count(); ++r) {
    if (!net.is_router(r)) continue;
    auto& router = net.router(r);
    router.clear_routes();
    for (util::NodeId d = 0; d < tables.node_count(); ++d) {
      if (d == r) continue;
      const auto& routes = tables.to(d);
      if (r >= routes.next_hop.size()) continue;
      const util::NodeId nh = routes.next_hop[r];
      if (nh == util::kInvalidNode) continue;
      if (auto* iface = router.interface_to(nh)) {
        router.set_route(d, iface->index());
      }
    }
  }
}

void install_policy_routes(sim::Network& net, const PolicyRoutes& routes) {
  for (util::NodeId r = 0; r < net.node_count(); ++r) {
    if (!net.is_router(r)) continue;
    auto& router = net.router(r);
    router.clear_routes();
    for (util::NodeId d = 0; d < net.node_count(); ++d) {
      if (d == r) continue;
      // Default (locally originated) route: origin state prev == r.
      if (auto nh = routes.next_hop(r, r, d)) {
        if (auto* iface = router.interface_to(*nh)) router.set_route(d, iface->index());
      }
      // Policy routes per previous hop.
      for (std::size_t i = 0; i < router.interface_count(); ++i) {
        const util::NodeId prev = router.interface(i).peer();
        const auto nh = routes.next_hop(prev, r, d);
        if (!nh) {
          router.set_policy_drop(prev, d);
          continue;
        }
        if (auto* iface = router.interface_to(*nh)) {
          router.set_policy_route(prev, d, iface->index());
        }
      }
    }
  }
}

}  // namespace fatih::routing
