#include "routing/topologies.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace fatih::routing {

const std::vector<AbileneLink>& abilene_links() {
  // Delays chosen so that:
  //   Sunnyvale-Denver-KansasCity-Indianapolis-Chicago-NewYork = 25 ms
  //   Sunnyvale-LosAngeles-Houston-Atlanta-Washington-NewYork  = 28 ms
  // matching the one-way latencies quoted for Fig. 5.7.
  static const std::vector<AbileneLink> links = {
      {kSeattle, kSunnyvale, 4},     {kSeattle, kDenver, 11},
      {kSunnyvale, kLosAngeles, 3},  {kSunnyvale, kDenver, 8},
      {kLosAngeles, kHouston, 9},    {kDenver, kKansasCity, 4},
      {kHouston, kKansasCity, 6},    {kHouston, kAtlanta, 7},
      {kKansasCity, kIndianapolis, 5}, {kIndianapolis, kChicago, 2},
      {kIndianapolis, kAtlanta, 8},  {kChicago, kNewYork, 6},
      {kAtlanta, kWashington, 5},    {kNewYork, kWashington, 4},
  };
  return links;
}

std::string abilene_name(util::NodeId n) {
  static const char* names[] = {"Seattle",      "Sunnyvale", "LosAngeles", "Denver",
                                "KansasCity",   "Houston",   "Indianapolis", "Chicago",
                                "Atlanta",      "Washington", "NewYork"};
  if (n < std::size(names)) return names[n];
  return util::node_name(n);
}

Topology abilene_topology() {
  Topology t;
  t.ensure_node(kNewYork);
  for (const auto& l : abilene_links()) t.add_duplex(l.a, l.b, l.delay_ms);
  return t;
}

IspProfile sprintlink_profile() { return IspProfile{315, 972, 45, "Sprintlink-like"}; }

IspProfile ebone_profile() { return IspProfile{87, 161, 11, "EBONE-like"}; }

Topology synthetic_isp(const IspProfile& profile, std::uint64_t seed) {
  assert(profile.routers >= 8);
  util::Rng rng(seed);
  Topology t;
  t.ensure_node(static_cast<util::NodeId>(profile.routers - 1));

  std::set<std::pair<util::NodeId, util::NodeId>> links;
  std::vector<std::size_t> degree(profile.routers, 0);

  auto add_link = [&](util::NodeId a, util::NodeId b) {
    if (a == b) return false;
    const auto key = std::minmax(a, b);
    if (links.contains({key.first, key.second})) return false;
    if (degree[a] >= profile.max_degree || degree[b] >= profile.max_degree) return false;
    links.insert({key.first, key.second});
    ++degree[a];
    ++degree[b];
    return true;
  };

  // Two-level ISP structure (Rocketfuel-like): a backbone ring of B
  // routers with a few chords, and per-backbone regions grown as trees
  // with hub-biased attachment. This yields the long paths (and hence the
  // |Pr| growth through k ~ 8) that measured ISP maps exhibit, unlike
  // low-diameter pure preferential-attachment graphs.
  const std::size_t n = profile.routers;
  const auto backbone = static_cast<util::NodeId>(std::max<std::size_t>(6, n / 12));

  for (util::NodeId b = 0; b < backbone; ++b) {
    add_link(b, static_cast<util::NodeId>((b + 1) % backbone));
  }
  for (util::NodeId i = 0; i + 8 < backbone; i += 8) {
    // Sparse chords keep the backbone redundant without collapsing its
    // diameter (the long-path tail drives Fig. 5.2's growth at large k).
    add_link(i, static_cast<util::NodeId>((i + backbone / 3) % backbone));
  }

  // Grow regions: each non-backbone router joins a region chosen
  // preferentially (big regions grow bigger, giving a heavy-tailed hub
  // degree), attaching either to the region's backbone root (hub bias) or
  // to a random member (tree depth).
  std::vector<std::vector<util::NodeId>> region_members(backbone);
  for (util::NodeId b = 0; b < backbone; ++b) region_members[b] = {b};
  std::vector<util::NodeId> membership;  // one entry per member, for preferential pick
  for (util::NodeId b = 0; b < backbone; ++b) membership.push_back(b);

  // Reserve a fraction of routers for access chains (the degree-1/2
  // strings measured maps show at the network edge); the rest grow the
  // regional trees.
  const auto chain_nodes = static_cast<util::NodeId>(n / 4);
  const auto tree_end = static_cast<util::NodeId>(n - chain_nodes);
  for (util::NodeId node = backbone; node < tree_end; ++node) {
    const util::NodeId via = membership[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(membership.size()) - 1))];
    const util::NodeId region =
        via < backbone ? via : [&] {
          for (util::NodeId b = 0; b < backbone; ++b) {
            for (util::NodeId m : region_members[b]) {
              if (m == via) return b;
            }
          }
          return util::NodeId{0};
        }();
    // Attachment within the region: small regions hang off their root
    // (hub-and-spoke); as a region grows, new routers increasingly chain
    // off recent members, deepening the tree the way access networks
    // extend — this is what gives measured ISP maps their long paths.
    const auto& members = region_members[region];
    const double root_prob = std::min(0.6, 3.0 / std::sqrt(static_cast<double>(members.size())));
    util::NodeId attach_to;
    if (rng.bernoulli(root_prob) && degree[region] < profile.max_degree - 1) {
      attach_to = region;  // the backbone root
    } else if (rng.bernoulli(0.5)) {
      attach_to = members.back();  // extend the newest branch
    } else {
      attach_to = members[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
    }
    if (!add_link(node, attach_to)) {
      // Degree-capped: fall back to any member with spare degree.
      for (util::NodeId m : region_members[region]) {
        if (add_link(node, m)) {
          attach_to = m;
          break;
        }
      }
    }
    region_members[region].push_back(node);
    membership.push_back(node);
  }

  // Access chains: strings of 2-5 routers hanging off random tree members.
  {
    util::NodeId node = tree_end;
    while (node < n) {
      util::NodeId anchor = membership[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(membership.size()) - 1))];
      const auto len = static_cast<util::NodeId>(rng.uniform_int(2, 5));
      for (util::NodeId i = 0; i < len && node < n; ++i, ++node) {
        if (!add_link(node, anchor)) {
          break;
        }
        anchor = node;
      }
    }
  }

  // Extra links to reach the target count: mostly intra-region redundancy,
  // occasionally an inter-region shortcut.
  int stall = 0;
  while (links.size() < profile.links && stall < 200000) {
    bool added = false;
    if (rng.bernoulli(0.8)) {
      const auto region = static_cast<util::NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(backbone) - 1));
      const auto& members = region_members[region];
      if (members.size() >= 2) {
        const auto a = members[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
        const auto b = members[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
        added = add_link(a, b);
      }
    } else {
      const auto a =
          static_cast<util::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto b =
          static_cast<util::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      added = add_link(a, b);
    }
    stall = added ? 0 : stall + 1;
  }

  for (const auto& [a, b] : links) t.add_duplex(a, b, 1);
  return t;
}

}  // namespace fatih::routing
