// Paths and path-segments (dissertation §4.1).
//
// A path is a finite sequence of adjacent routers; an x-path-segment is a
// sequence of x consecutive routers that is a subsequence of a path.
// Detection protocols report suspicions as path-segments and monitor a
// per-router set Pr of segments whose structure differs between
// Protocol Pi2 (§5.1) and Protocol Pi(k+2) (§5.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace fatih::routing {

/// An ordered sequence of adjacent routers.
using Path = std::vector<util::NodeId>;

/// A path-segment: value type with set semantics (hashable, ordered).
class PathSegment {
 public:
  PathSegment() = default;
  explicit PathSegment(std::vector<util::NodeId> nodes) : nodes_(std::move(nodes)) {}
  PathSegment(std::initializer_list<util::NodeId> nodes) : nodes_(nodes) {}

  [[nodiscard]] const std::vector<util::NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t length() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] util::NodeId front() const { return nodes_.front(); }
  [[nodiscard]] util::NodeId back() const { return nodes_.back(); }
  [[nodiscard]] bool contains(util::NodeId r) const;
  /// True if `r` is one of the two terminal routers of the segment.
  [[nodiscard]] bool is_end(util::NodeId r) const;
  /// True if this segment occurs contiguously inside `path`.
  [[nodiscard]] bool within(const Path& path) const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const PathSegment&) const = default;
  auto operator<=>(const PathSegment&) const = default;

 private:
  std::vector<util::NodeId> nodes_;
};

struct PathSegmentHash {
  [[nodiscard]] std::size_t operator()(const PathSegment& s) const;
};

/// Extracts every contiguous window of exactly `x` nodes from `path`.
[[nodiscard]] std::vector<PathSegment> windows(const Path& path, std::size_t x);

/// The per-router monitored sets for the two protocols, computed over a
/// collection of in-use paths (normally: the unique shortest path for
/// every ordered source/destination pair).
class SegmentIndex {
 public:
  /// `k` is the AdjacentFault(k) bound. Paths of length < 3 contribute
  /// nothing (a 2-path has no interior router to monitor).
  SegmentIndex(const std::vector<Path>& used_paths, std::size_t k);

  /// Pr for Protocol Pi2 at router r: all (k+2)-windows of used paths that
  /// contain r, plus whole used paths of length 3..k+1 containing r
  /// (§5.1: shorter paths whose ends are terminal routers).
  [[nodiscard]] std::vector<PathSegment> pr_pi2(util::NodeId r) const;

  /// Pr for Protocol Pi(k+2) at router r: all segments of length 3..k+2 of
  /// used paths with r as one of the ends (§5.2).
  [[nodiscard]] std::vector<PathSegment> pr_pik2(util::NodeId r) const;

  /// All distinct segments monitored by anyone under Pi2 / Pi(k+2).
  [[nodiscard]] const std::vector<PathSegment>& all_pi2_segments() const { return pi2_; }
  [[nodiscard]] const std::vector<PathSegment>& all_pik2_segments() const { return pik2_; }

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  std::vector<PathSegment> pi2_;   // sorted, unique
  std::vector<PathSegment> pik2_;  // sorted, unique
};

}  // namespace fatih::routing
