#include "routing/link_state.hpp"

#include <algorithm>
#include <cassert>

#include "routing/install.hpp"
#include "util/log.hpp"

namespace fatih::routing {

namespace {
constexpr std::uint32_t kHelloBytes = 24;
constexpr const char* kComponent = "link-state";
}  // namespace

LinkStateRouting::LinkStateRouting(sim::Network& net, const crypto::KeyRegistry& keys,
                                   LinkStateConfig config)
    : net_(net), keys_(keys), config_(config) {
  daemons_.resize(net_.node_count());
  for (util::NodeId n = 0; n < net_.node_count(); ++n) {
    daemons_[n].id = n;
    daemons_[n].is_router = net_.is_router(n);
    net_.node(n).add_control_sink([this, n](const sim::Packet& p, util::NodeId prev,
                                            util::SimTime) { on_control(n, p, prev); });
  }
  // A restarted router comes back with empty soft state (adjacencies,
  // LSDB, response state) but a monotonic LSA sequence number.
  net_.add_node_status_hook([this](util::NodeId id, bool up, util::SimTime) {
    if (up) reset_soft_state(id);
  });
}

void LinkStateRouting::start() {
  for (util::NodeId n = 0; n < net_.node_count(); ++n) {
    if (!net_.is_router(n)) continue;  // hosts don't participate in adjacency formation
    // Stagger first hellos across the interval to avoid lockstep.
    const auto offset = util::Duration::nanos(
        net_.rng().uniform_int(0, config_.hello_interval.count_nanos() - 1));
    net_.sim().schedule_in(offset, [this, n] { send_hello(n); });
    net_.sim().schedule_in(offset + config_.hello_interval, [this, n] { scan_neighbors(n); });
  }
}

void LinkStateRouting::send_hello(util::NodeId n) {
  // The timer keeps ticking while the node is down (deterministic event
  // pattern); a down node just doesn't emit.
  net_.sim().schedule_in(config_.hello_interval, [this, n] { send_hello(n); });
  if (!net_.node_up(n)) return;
  auto payload = std::make_shared<HelloPayload>();
  payload->from = n;
  auto& node = net_.node(n);
  for (std::size_t i = 0; i < node.interface_count(); ++i) {
    auto& iface = node.interface(i);
    if (!net_.is_router(iface.peer())) continue;  // hosts don't form adjacencies
    sim::PacketHeader hdr;
    hdr.src = n;
    hdr.dst = iface.peer();
    hdr.proto = sim::Protocol::kControl;
    sim::Packet p = net_.make_packet(hdr, kHelloBytes);
    p.control = payload;
    iface.send(p);
  }
}

void LinkStateRouting::scan_neighbors(util::NodeId n) {
  net_.sim().schedule_in(config_.hello_interval, [this, n] { scan_neighbors(n); });
  if (!net_.node_up(n)) return;
  Daemon& d = daemons_[n];
  const auto now = net_.sim().now();
  bool withdrew = false;
  for (auto it = d.neighbors_up.begin(); it != d.neighbors_up.end();) {
    const auto heard = d.last_hello.find(*it);
    if (heard == d.last_hello.end() || heard->second + config_.dead_interval <= now) {
      util::log(util::LogLevel::kInfo, kComponent, "%s declares neighbor %s dead",
                net_.node(n).name().c_str(), util::node_name(*it).c_str());
      if (heard != d.last_hello.end()) d.last_hello.erase(heard);
      it = d.neighbors_up.erase(it);
      withdrew = true;
    } else {
      ++it;
    }
  }
  if (withdrew) {
    originate_lsa(n);  // withdraw the dead adjacency from the fabric
    schedule_spf(n);
  }
}

void LinkStateRouting::on_control(util::NodeId n, const sim::Packet& p, util::NodeId prev) {
  if (p.control == nullptr) return;
  Daemon& d = daemons_[n];
  switch (p.control->kind()) {
    case kKindHello: {
      if (!d.is_router) break;  // hosts ignore adjacency formation
      const auto& hello = static_cast<const HelloPayload&>(*p.control);
      d.last_hello[hello.from] = net_.sim().now();
      if (!d.neighbors_up.contains(hello.from)) {
        d.neighbors_up.insert(hello.from);
        originate_lsa(n);
        synchronize_lsdb(n, hello.from);
      }
      break;
    }
    case kKindLsa: {
      const auto& lsa = static_cast<const LsaPayload&>(*p.control);
      if (!crypto::verify(keys_, lsa.envelope)) return;
      if (lsa.envelope.signer != lsa.origin) return;
      auto it = d.lsdb.find(lsa.origin);
      if (it != d.lsdb.end() && it->second.seq >= lsa.seq) return;  // stale/duplicate
      d.lsdb[lsa.origin] = lsa;
      flood(n, std::shared_ptr<const sim::ControlPayload>(p.control), p.size_bytes, prev);
      if (d.is_router) schedule_spf(n);
      break;
    }
    case kKindAlert: {
      const auto& alert = static_cast<const AlertPayload&>(*p.control);
      if (!crypto::verify(keys_, alert.envelope)) return;
      if (alert.envelope.signer != alert.reporter) return;
      if (!remember_alert(d, alert)) return;
      flood(n, std::shared_ptr<const sim::ControlPayload>(p.control), p.size_bytes, prev);
      if (d.is_router) accept_alert(n, alert);
      break;
    }
    default:
      break;
  }
}

void LinkStateRouting::originate_lsa(util::NodeId n) {
  Daemon& d = daemons_[n];
  if (!net_.node_up(n)) return;
  const auto now = net_.sim().now();
  if (now - d.last_lsa < config_.lsa_min_interval) {
    if (!d.lsa_pending) {
      d.lsa_pending = true;
      net_.sim().schedule_at(d.last_lsa + config_.lsa_min_interval, [this, n] {
        daemons_[n].lsa_pending = false;
        originate_lsa(n);
      });
    }
    return;
  }
  d.last_lsa = now;

  auto lsa = std::make_shared<LsaPayload>();
  lsa->origin = n;
  lsa->seq = ++d.own_seq;
  auto& node = net_.node(n);
  for (std::size_t i = 0; i < node.interface_count(); ++i) {
    const util::NodeId peer = node.interface(i).peer();
    if (net_.is_router(peer)) {
      // Router adjacencies require a live hello exchange.
      if (!d.neighbors_up.contains(peer)) continue;
    } else {
      // Host-attached interfaces are stub links, advertised whenever the
      // link itself is up (hosts don't hello).
      if (!node.interface(i).up()) continue;
    }
    std::uint32_t metric = 1;
    // Metric comes from the physical adjacency table.
    for (const auto& adj : net_.adjacencies()) {
      if (adj.from == n && adj.to == peer) {
        metric = adj.metric;
        break;
      }
    }
    lsa->neighbors.push_back(Topology::Edge{peer, metric});
  }
  lsa->envelope = crypto::sign(keys_, n, lsa_bytes(*lsa));

  // Accept our own LSA locally, then flood.
  d.lsdb[n] = *lsa;
  const std::uint32_t bytes = 48 + 8 * static_cast<std::uint32_t>(lsa->neighbors.size());
  flood(n, lsa, bytes, util::kInvalidNode);
  schedule_spf(n);
}

void LinkStateRouting::flood(util::NodeId n, std::shared_ptr<const sim::ControlPayload> payload,
                             std::uint32_t bytes, util::NodeId except_peer) {
  // A protocol-faulty daemon simply refuses to propagate (it can still
  // originate its own traffic, which except_peer == kInvalidNode marks).
  if (suppressed_.contains(n) && except_peer != util::kInvalidNode) return;
  if (!net_.node_up(n)) return;
  auto& node = net_.node(n);
  for (std::size_t i = 0; i < node.interface_count(); ++i) {
    auto& iface = node.interface(i);
    if (iface.peer() == except_peer) continue;
    if (!net_.is_router(iface.peer())) continue;  // hosts don't participate in flooding
    sim::PacketHeader hdr;
    hdr.src = n;
    hdr.dst = iface.peer();
    hdr.proto = sim::Protocol::kControl;
    sim::Packet p = net_.make_packet(hdr, bytes);
    p.control = payload;
    iface.send(p);
  }
}

void LinkStateRouting::synchronize_lsdb(util::NodeId n, util::NodeId peer) {
  // OSPF database-exchange analogue: a freshly formed adjacency receives a
  // copy of everything this router knows. Without it a restarted
  // (amnesiac) router would only relearn LSAs that happen to re-originate;
  // distant, unchanged LSAs never re-flood on their own. The receiver's
  // (origin, seq) dedup absorbs the duplicates.
  if (suppressed_.contains(n)) return;  // protocol-faulty: won't help peers
  Daemon& d = daemons_[n];
  auto* iface = net_.node(n).interface_to(peer);
  if (iface == nullptr) return;
  for (const auto& [origin, lsa] : d.lsdb) {
    auto payload = std::make_shared<LsaPayload>(lsa);
    sim::PacketHeader hdr;
    hdr.src = n;
    hdr.dst = peer;
    hdr.proto = sim::Protocol::kControl;
    const std::uint32_t bytes = 48 + 8 * static_cast<std::uint32_t>(lsa.neighbors.size());
    sim::Packet p = net_.make_packet(hdr, bytes);
    p.control = std::move(payload);
    iface->send(p);
  }
}

void LinkStateRouting::schedule_spf(util::NodeId n) {
  Daemon& d = daemons_[n];
  if (d.spf_scheduled) return;
  d.spf_scheduled = true;
  const auto now = net_.sim().now();
  auto when = now + config_.spf_delay;
  if (d.spf_ran_once && d.last_spf + config_.spf_hold > when) {
    when = d.last_spf + config_.spf_hold;
  }
  FATIH_TRACE_EMIT(net_.sim().trace(), route(now, obs::TraceCode::kSpfScheduled, n,
                                             util::kInvalidNode, when.nanos()));
  net_.sim().schedule_at(when, [this, n] { run_spf(n); });
}

namespace {
/// FNV-1a accumulation, for the installed-routes fingerprint.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}
}  // namespace

void LinkStateRouting::run_spf(util::NodeId n) {
  Daemon& d = daemons_[n];
  d.spf_scheduled = false;
  if (!net_.node_up(n)) return;  // scheduled before a crash; drop on the floor
  d.spf_ran_once = true;
  d.last_spf = net_.sim().now();
  ++d.spf_count;
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   route(d.last_spf, obs::TraceCode::kSpfRun, n, util::kInvalidNode, d.spf_count));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("routing.spf_runs").inc());

  // Build this router's topology view from its LSDB. Router-router edges
  // require two-way confirmation (both origins advertise each other) so a
  // crashed router's stale LSA cannot keep a withdrawn adjacency alive.
  // Host stub links are one-sided by construction — the attached router
  // vouches for them — and links are physically symmetric, so both get
  // added as duplex edges.
  Topology topo;
  if (net_.node_count() > 0) topo.ensure_node(static_cast<util::NodeId>(net_.node_count() - 1));
  for (const auto& [origin, lsa] : d.lsdb) {
    for (const auto& e : lsa.neighbors) {
      if (net_.is_router(e.to)) {
        const auto back = d.lsdb.find(e.to);
        if (back == d.lsdb.end()) continue;
        const auto& back_edges = back->second.neighbors;
        const bool reciprocal =
            std::any_of(back_edges.begin(), back_edges.end(),
                        [origin = origin](const Topology::Edge& r) { return r.to == origin; });
        if (!reciprocal) continue;
      }
      topo.add_duplex(origin, e.to, e.metric);
    }
  }
  d.view = topo;

  // Install routes, fingerprinting what goes in so we can tell an actual
  // table change from an SPF that recomputed the same answer.
  std::uint64_t sig = 1469598103934665603ULL;
  auto& router = net_.router(n);
  if (d.banned.empty()) {
    const RoutingTables tables(topo);
    router.clear_routes();
    for (util::NodeId dst = 0; dst < net_.node_count(); ++dst) {
      if (dst == n) continue;
      const util::NodeId nh = tables.to(dst).next_hop[n];
      if (nh == util::kInvalidNode) continue;
      if (auto* iface = router.interface_to(nh)) {
        router.set_route(dst, iface->index());
        mix(sig, (static_cast<std::uint64_t>(dst) << 32) | iface->index());
      }
    }
  } else {
    const PolicyRoutes routes(topo, d.banned);
    router.clear_routes();
    for (util::NodeId dst = 0; dst < net_.node_count(); ++dst) {
      if (dst == n) continue;
      if (auto nh = routes.next_hop(n, n, dst)) {
        if (auto* iface = router.interface_to(*nh)) {
          router.set_route(dst, iface->index());
          mix(sig, (static_cast<std::uint64_t>(dst) << 32) | iface->index());
        }
      }
      for (std::size_t i = 0; i < router.interface_count(); ++i) {
        const util::NodeId prev = router.interface(i).peer();
        const auto nh = routes.next_hop(prev, n, dst);
        if (!nh) {
          router.set_policy_drop(prev, dst);
          mix(sig, (static_cast<std::uint64_t>(prev) << 40) | (static_cast<std::uint64_t>(dst) << 8));
        } else if (auto* iface = router.interface_to(*nh)) {
          router.set_policy_route(prev, dst, iface->index());
          mix(sig, (static_cast<std::uint64_t>(prev) << 40) | (static_cast<std::uint64_t>(dst) << 8) |
                       (iface->index() + 1));
        }
      }
    }
  }

  util::log(util::LogLevel::kInfo, kComponent, "%s ran SPF #%zu at %s",
            net_.node(n).name().c_str(), d.spf_count, util::to_string(d.last_spf).c_str());
  const bool changed = d.route_change_count == 0 || sig != d.route_signature;
  if (changed) {
    d.route_signature = sig;
    d.last_route_change = d.last_spf;
    ++d.route_change_count;
    FATIH_TRACE_EMIT(net_.sim().trace(), route(d.last_spf, obs::TraceCode::kRouteChange, n,
                                               util::kInvalidNode, d.route_change_count));
    FATIH_METRIC_REG(net_.sim().metrics(), counter("routing.route_changes").inc());
    for (const auto& hook : route_change_hooks_) hook(n, d.last_spf);
  }
}

void LinkStateRouting::accept_alert(util::NodeId n, const AlertPayload& alert) {
  Daemon& d = daemons_[n];
  // Countermeasure rule (§4.2.2): only a suspicion reported by a router
  // adjacent to the segment (i.e. one of its members) triggers exclusion;
  // anything else could be a faulty router framing correct ones at a
  // distance.
  if (!alert.segment.contains(alert.reporter)) return;
  for (const auto& b : d.banned) {
    if (b == alert.segment) return;
  }
  d.banned.push_back(alert.segment);
  util::log(util::LogLevel::kInfo, kComponent, "%s accepts alert %s from %s",
            net_.node(n).name().c_str(), alert.segment.to_string().c_str(),
            util::node_name(alert.reporter).c_str());
  FATIH_TRACE_EMIT(net_.sim().trace(),
                   route(net_.sim().now(), obs::TraceCode::kAlertAccepted, n, alert.reporter));
  FATIH_METRIC_REG(net_.sim().metrics(), counter("routing.alerts_accepted").inc());
  if (alert_hook_) alert_hook_(n, alert, net_.sim().now());
  schedule_spf(n);
}

void LinkStateRouting::announce_suspicion(util::NodeId reporter, const PathSegment& segment,
                                          util::TimeInterval interval) {
  auto alert = std::make_shared<AlertPayload>();
  alert->reporter = reporter;
  alert->segment = segment;
  alert->interval = interval;
  alert->envelope = crypto::sign(keys_, reporter, alert_bytes(*alert));

  Daemon& d = daemons_[reporter];
  if (!remember_alert(d, *alert)) return;
  if (d.is_router) accept_alert(reporter, *alert);
  const std::uint32_t bytes = 48 + 8 * static_cast<std::uint32_t>(segment.length());
  flood(reporter, alert, bytes, util::kInvalidNode);
}

bool LinkStateRouting::remember_alert(Daemon& d, const AlertPayload& alert) {
  const auto now = net_.sim().now();
  // Age out records whose accusation interval ended long ago: by then the
  // alert has been applied (or superseded) everywhere, so the suppression
  // memory stays bounded by the alert arrival rate over one horizon
  // instead of growing for the lifetime of the run.
  for (auto it = d.seen_alerts.begin(); it != d.seen_alerts.end();) {
    if (it->second + config_.alert_memory <= now) {
      it = d.seen_alerts.erase(it);
    } else {
      ++it;
    }
  }
  const auto key = std::make_pair(alert.reporter, alert.segment);
  if (d.seen_alerts.contains(key)) return false;
  d.seen_alerts.emplace(key, alert.interval.end);
  return true;
}

void LinkStateRouting::reset_soft_state(util::NodeId n) {
  Daemon& d = daemons_[n];
  d.neighbors_up.clear();
  d.last_hello.clear();
  d.lsdb.clear();
  d.lsa_pending = false;
  d.spf_ran_once = false;
  d.banned.clear();
  d.seen_alerts.clear();
  d.view = Topology{};
  // own_seq, spf counters and route-change introspection survive: the
  // sequence number must stay monotonic so post-restart LSAs supersede
  // pre-crash ones, and the counters describe the whole experiment.
}

bool LinkStateRouting::converged(util::NodeId r) const {
  std::size_t routers = 0;
  for (util::NodeId n = 0; n < net_.node_count(); ++n) {
    if (net_.is_router(n)) ++routers;
  }
  return daemons_.at(r).lsdb.size() == routers && daemons_.at(r).spf_ran_once;
}

std::size_t LinkStateRouting::spf_runs(util::NodeId r) const { return daemons_.at(r).spf_count; }

const std::vector<PathSegment>& LinkStateRouting::banned_segments(util::NodeId r) const {
  return daemons_.at(r).banned;
}

const Topology& LinkStateRouting::topology_view(util::NodeId r) const {
  return daemons_.at(r).view;
}

util::SimTime LinkStateRouting::last_route_change(util::NodeId r) const {
  return daemons_.at(r).last_route_change;
}

std::size_t LinkStateRouting::route_changes(util::NodeId r) const {
  return daemons_.at(r).route_change_count;
}

const std::set<util::NodeId>& LinkStateRouting::neighbors(util::NodeId r) const {
  return daemons_.at(r).neighbors_up;
}

std::size_t LinkStateRouting::seen_alert_count(util::NodeId r) const {
  return daemons_.at(r).seen_alerts.size();
}

std::vector<std::byte> LinkStateRouting::lsa_bytes(const LsaPayload& lsa) {
  std::vector<std::byte> out;
  crypto::append_bytes(out, lsa.origin);
  crypto::append_bytes(out, lsa.seq);
  for (const auto& e : lsa.neighbors) {
    crypto::append_bytes(out, e.to);
    crypto::append_bytes(out, e.metric);
  }
  return out;
}

std::vector<std::byte> LinkStateRouting::alert_bytes(const AlertPayload& alert) {
  std::vector<std::byte> out;
  crypto::append_bytes(out, alert.reporter);
  for (util::NodeId n : alert.segment.nodes()) crypto::append_bytes(out, n);
  crypto::append_bytes(out, alert.interval.begin.nanos());
  crypto::append_bytes(out, alert.interval.end.nanos());
  return out;
}

}  // namespace fatih::routing
