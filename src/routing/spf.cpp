#include "routing/spf.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace fatih::routing {

DestinationRoutes compute_routes_to(const Topology& topo, util::NodeId dst) {
  const std::size_t n = topo.node_count();
  DestinationRoutes out;
  out.dst = dst;
  out.dist.assign(n, kUnreachable);
  out.next_hop.assign(n, util::kInvalidNode);
  if (dst >= n) return out;

  using Item = std::pair<std::uint64_t, util::NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  out.dist[dst] = 0;
  pq.emplace(0, dst);

  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (done[v]) continue;
    done[v] = true;
    // Metrics are symmetric, so scanning v's out-edges relaxes the
    // reverse edges u -> v.
    for (const auto& e : topo.neighbors(v)) {
      const util::NodeId u = e.to;
      const std::uint64_t nd = d + e.metric;
      if (nd < out.dist[u] || (nd == out.dist[u] && v < out.next_hop[u])) {
        const bool improved = nd < out.dist[u];
        out.dist[u] = nd;
        out.next_hop[u] = v;
        if (improved) pq.emplace(nd, u);
      }
    }
  }
  out.next_hop[dst] = util::kInvalidNode;
  return out;
}

RoutingTables::RoutingTables(const Topology& topo) {
  per_dst_.reserve(topo.node_count());
  for (util::NodeId d = 0; d < topo.node_count(); ++d) {
    per_dst_.push_back(compute_routes_to(topo, d));
  }
}

Path RoutingTables::path(util::NodeId src, util::NodeId dst) const {
  Path p;
  if (src >= per_dst_.size() || dst >= per_dst_.size()) return p;
  const auto& routes = per_dst_[dst];
  if (routes.dist[src] == kUnreachable) return p;
  util::NodeId cur = src;
  p.push_back(cur);
  while (cur != dst) {
    cur = routes.next_hop[cur];
    if (cur == util::kInvalidNode || p.size() > per_dst_.size()) return {};
    p.push_back(cur);
  }
  return p;
}

std::vector<Path> RoutingTables::all_paths(const std::vector<util::NodeId>& terminals) const {
  std::vector<Path> out;
  for (util::NodeId s : terminals) {
    for (util::NodeId d : terminals) {
      if (s == d) continue;
      Path p = path(s, d);
      if (!p.empty()) out.push_back(std::move(p));
    }
  }
  return out;
}

// ------------------------------------------------------------- PolicyRoutes

PolicyRoutes::PolicyRoutes(const Topology& topo, const std::vector<PathSegment>& banned)
    : n_(topo.node_count()) {
  for (const PathSegment& seg : banned) {
    const auto& v = seg.nodes();
    if (v.size() == 2) {
      banned_links_.emplace(v[0], v[1]);
    } else if (v.size() >= 3) {
      for (std::size_t i = 0; i + 3 <= v.size(); ++i) {
        banned_triples_.emplace(v[i], v[i + 1], v[i + 2]);
      }
    }
  }
  next_.resize(n_);
  for (util::NodeId d = 0; d < n_; ++d) compute_for_destination(topo, d);
}

bool PolicyRoutes::link_banned(util::NodeId a, util::NodeId b) const {
  return banned_links_.contains({a, b});
}

bool PolicyRoutes::triple_banned(util::NodeId a, util::NodeId b, util::NodeId c) const {
  return banned_triples_.contains({a, b, c});
}

void PolicyRoutes::compute_for_destination(const Topology& topo, util::NodeId dst) {
  // Dijkstra over (prev, node) states: dist[s] = cost from `node` to dst
  // for a packet that arrived via `prev` (prev == node for origination).
  const std::size_t states = n_ * n_;
  std::vector<std::uint64_t> dist(states, kUnreachable);
  auto& next = next_[dst];
  next.assign(states, util::kInvalidNode);

  auto idx = [this](util::NodeId prev, util::NodeId node) {
    return static_cast<std::size_t>(prev) * n_ + node;
  };

  using Item = std::pair<std::uint64_t, std::uint32_t>;  // (dist, state index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;

  // Every state sitting at dst costs 0, whatever the previous hop.
  for (util::NodeId p = 0; p < n_; ++p) {
    const bool adjacent_or_self = p == dst || topo.has_edge(p, dst);
    if (!adjacent_or_self) continue;
    dist[idx(p, dst)] = 0;
    pq.emplace(0, static_cast<std::uint32_t>(idx(p, dst)));
  }

  std::vector<bool> done(states, false);
  while (!pq.empty()) {
    const auto [d, si] = pq.top();
    pq.pop();
    if (done[si]) continue;
    done[si] = true;
    const auto node = static_cast<util::NodeId>(si % n_);
    const auto via_prev = static_cast<util::NodeId>(si / n_);
    // Popping state (via_prev, node): a packet at via_prev heading to node
    // then onward costs metric(via_prev, node) + d. Relax predecessor
    // states (p, via_prev).
    if (via_prev == node) continue;  // origin states have no predecessors
    if (link_banned(via_prev, node)) continue;
    const std::uint64_t hop = topo.metric(via_prev, node);
    if (hop == 0) continue;  // no such physical edge
    const std::uint64_t nd = d + hop;
    for (util::NodeId p = 0; p < n_; ++p) {
      const bool reachable_state = p == via_prev || topo.has_edge(p, via_prev);
      if (!reachable_state) continue;
      if (p != via_prev && triple_banned(p, via_prev, node)) continue;
      const std::size_t pi = idx(p, via_prev);
      if (nd < dist[pi] || (nd == dist[pi] && node < next[pi])) {
        const bool improved = nd < dist[pi];
        dist[pi] = nd;
        next[pi] = node;
        if (improved) pq.emplace(nd, static_cast<std::uint32_t>(pi));
      }
    }
  }
}

std::optional<util::NodeId> PolicyRoutes::next_hop(util::NodeId prev, util::NodeId node,
                                                   util::NodeId dst) const {
  if (dst >= n_ || node >= n_ || prev >= n_) return std::nullopt;
  if (node == dst) return std::nullopt;
  const util::NodeId nh = next_[dst][static_cast<std::size_t>(prev) * n_ + node];
  if (nh == util::kInvalidNode) return std::nullopt;
  return nh;
}

Path PolicyRoutes::path(util::NodeId src, util::NodeId dst) const {
  Path p;
  if (src >= n_ || dst >= n_) return p;
  util::NodeId prev = src;
  util::NodeId cur = src;
  p.push_back(cur);
  while (cur != dst) {
    const auto nh = next_hop(prev, cur, dst);
    if (!nh || p.size() > n_ * n_) return {};
    prev = cur;
    cur = *nh;
    p.push_back(cur);
  }
  return p;
}

}  // namespace fatih::routing
