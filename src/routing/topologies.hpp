// Reference topologies used by the dissertation's evaluation.
//
//  * Abilene (Fig. 5.6): the 11-PoP Internet2 backbone, with link delays
//    chosen so that the two coast-to-coast paths used in the Fatih
//    experiment have one-way latencies of 25 ms and 28 ms (Fig. 5.7).
//  * Rocketfuel-like ISP graphs (Fig. 5.2/5.4): synthetic graphs matched
//    to the published statistics of the measured Sprintlink (315 routers,
//    972 links, mean degree 6.17, max degree 45) and EBONE (87 routers,
//    161 links, mean degree 3.70, max degree 11) maps. The real maps are
//    not redistributable; a degree-matched synthetic graph preserves the
//    path-segment structure the figures depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/graph.hpp"

namespace fatih::routing {

/// Abilene PoP indices (NodeIds in the returned topology).
enum AbileneNode : util::NodeId {
  kSeattle = 0,
  kSunnyvale = 1,
  kLosAngeles = 2,
  kDenver = 3,
  kKansasCity = 4,
  kHouston = 5,
  kIndianapolis = 6,
  kChicago = 7,
  kAtlanta = 8,
  kWashington = 9,
  kNewYork = 10,
};

/// One Abilene link with its one-way propagation delay in milliseconds.
/// Metrics equal the delay, so SPF prefers the lower-latency path.
struct AbileneLink {
  util::NodeId a;
  util::NodeId b;
  std::uint32_t delay_ms;
};

/// The 14 Abilene links.
[[nodiscard]] const std::vector<AbileneLink>& abilene_links();

/// Human-readable PoP name.
[[nodiscard]] std::string abilene_name(util::NodeId n);

/// Abilene as a metric-weighted topology (metric = delay in ms).
[[nodiscard]] Topology abilene_topology();

/// Parameters of a synthetic ISP graph.
struct IspProfile {
  std::size_t routers;
  std::size_t links;        ///< undirected link count target
  std::size_t max_degree;   ///< cap on any router's degree
  std::string name;
};

[[nodiscard]] IspProfile sprintlink_profile();
[[nodiscard]] IspProfile ebone_profile();

/// Generates a connected preferential-attachment graph matched to the
/// profile (unit metrics). Deterministic in `seed`.
[[nodiscard]] Topology synthetic_isp(const IspProfile& profile, std::uint64_t seed);

}  // namespace fatih::routing
