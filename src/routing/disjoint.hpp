// Vertex-disjoint path computation (Perlman's Byzantine-robust routing,
// dissertation §3.7).
//
// PERLMAN's data-routing protocol with Byzantine robustness assumes
// TotalFault(f) and forwards each packet over f+1 vertex-disjoint paths:
// at least one path avoids every faulty router, so delivery is guaranteed
// without detecting anyone. Disjoint paths are found with unit-capacity
// max-flow over the node-split graph (Menger's theorem).
#pragma once

#include <vector>

#include "routing/graph.hpp"
#include "routing/segments.hpp"

namespace fatih::routing {

/// Up to `want` pairwise internally-vertex-disjoint paths from src to dst
/// (fewer if the graph's connectivity is smaller). Paths include both
/// endpoints. Deterministic for a given topology.
[[nodiscard]] std::vector<Path> disjoint_paths(const Topology& topo, util::NodeId src,
                                               util::NodeId dst, std::size_t want);

/// The internal vertex connectivity between src and dst (the maximum
/// number of disjoint paths available = Menger bound).
[[nodiscard]] std::size_t vertex_connectivity(const Topology& topo, util::NodeId src,
                                              util::NodeId dst);

}  // namespace fatih::routing
