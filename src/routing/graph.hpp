// Topology graph used by the routing computations.
//
// A directed multigraph-free graph with symmetric integer metrics. This is
// the "global view of the current network topology" that the link-state
// protocol gives every router (dissertation §4.1); the detection protocols
// derive their monitored path-segments from it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace fatih::sim {
class Network;
}

namespace fatih::routing {

/// Weighted directed graph over dense NodeIds.
class Topology {
 public:
  struct Edge {
    util::NodeId to;
    std::uint32_t metric;
  };

  /// Ensures node ids 0..id exist.
  void ensure_node(util::NodeId id);

  /// Adds a directed edge (idempotent for identical (from,to); keeps the
  /// first metric).
  void add_edge(util::NodeId from, util::NodeId to, std::uint32_t metric);

  /// Adds both directions with the same metric.
  void add_duplex(util::NodeId a, util::NodeId b, std::uint32_t metric);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] std::span<const Edge> neighbors(util::NodeId n) const;
  [[nodiscard]] bool has_edge(util::NodeId from, util::NodeId to) const;
  /// Metric of edge from->to; 0 if absent.
  [[nodiscard]] std::uint32_t metric(util::NodeId from, util::NodeId to) const;
  /// Out-degree of n.
  [[nodiscard]] std::size_t degree(util::NodeId n) const;

  /// Snapshot of the simulated network's *usable* adjacencies: links that
  /// are admin-down or touch a crashed router are excluded.
  [[nodiscard]] static Topology from_network(const sim::Network& net);

 private:
  std::vector<std::vector<Edge>> adj_;
};

}  // namespace fatih::routing
