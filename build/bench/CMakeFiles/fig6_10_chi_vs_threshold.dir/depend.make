# Empty dependencies file for fig6_10_chi_vs_threshold.
# This may be replaced when dependencies are built.
