file(REMOVE_RECURSE
  "CMakeFiles/tab7_3_exchange_bandwidth.dir/tab7_3_exchange_bandwidth.cpp.o"
  "CMakeFiles/tab7_3_exchange_bandwidth.dir/tab7_3_exchange_bandwidth.cpp.o.d"
  "tab7_3_exchange_bandwidth"
  "tab7_3_exchange_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_3_exchange_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
