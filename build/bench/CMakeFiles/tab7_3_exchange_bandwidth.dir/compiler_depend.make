# Empty compiler generated dependencies file for tab7_3_exchange_bandwidth.
# This may be replaced when dependencies are built.
