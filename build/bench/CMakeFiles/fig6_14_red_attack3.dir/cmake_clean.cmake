file(REMOVE_RECURSE
  "CMakeFiles/fig6_14_red_attack3.dir/fig6_14_red_attack3.cpp.o"
  "CMakeFiles/fig6_14_red_attack3.dir/fig6_14_red_attack3.cpp.o.d"
  "fig6_14_red_attack3"
  "fig6_14_red_attack3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_14_red_attack3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
