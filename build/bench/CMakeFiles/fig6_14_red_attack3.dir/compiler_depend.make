# Empty compiler generated dependencies file for fig6_14_red_attack3.
# This may be replaced when dependencies are built.
