# Empty compiler generated dependencies file for tab3_1_ack_protocols.
# This may be replaced when dependencies are built.
