file(REMOVE_RECURSE
  "CMakeFiles/tab3_1_ack_protocols.dir/tab3_1_ack_protocols.cpp.o"
  "CMakeFiles/tab3_1_ack_protocols.dir/tab3_1_ack_protocols.cpp.o.d"
  "tab3_1_ack_protocols"
  "tab3_1_ack_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_1_ack_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
