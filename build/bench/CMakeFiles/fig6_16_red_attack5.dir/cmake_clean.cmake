file(REMOVE_RECURSE
  "CMakeFiles/fig6_16_red_attack5.dir/fig6_16_red_attack5.cpp.o"
  "CMakeFiles/fig6_16_red_attack5.dir/fig6_16_red_attack5.cpp.o.d"
  "fig6_16_red_attack5"
  "fig6_16_red_attack5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_16_red_attack5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
