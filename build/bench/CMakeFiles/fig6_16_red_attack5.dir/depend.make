# Empty dependencies file for fig6_16_red_attack5.
# This may be replaced when dependencies are built.
