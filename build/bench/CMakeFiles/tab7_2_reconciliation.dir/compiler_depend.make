# Empty compiler generated dependencies file for tab7_2_reconciliation.
# This may be replaced when dependencies are built.
