file(REMOVE_RECURSE
  "CMakeFiles/tab7_2_reconciliation.dir/tab7_2_reconciliation.cpp.o"
  "CMakeFiles/tab7_2_reconciliation.dir/tab7_2_reconciliation.cpp.o.d"
  "tab7_2_reconciliation"
  "tab7_2_reconciliation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_2_reconciliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
