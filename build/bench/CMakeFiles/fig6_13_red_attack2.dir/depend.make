# Empty dependencies file for fig6_13_red_attack2.
# This may be replaced when dependencies are built.
