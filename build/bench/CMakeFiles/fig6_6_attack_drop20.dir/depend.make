# Empty dependencies file for fig6_6_attack_drop20.
# This may be replaced when dependencies are built.
