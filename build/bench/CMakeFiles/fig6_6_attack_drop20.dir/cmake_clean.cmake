file(REMOVE_RECURSE
  "CMakeFiles/fig6_6_attack_drop20.dir/fig6_6_attack_drop20.cpp.o"
  "CMakeFiles/fig6_6_attack_drop20.dir/fig6_6_attack_drop20.cpp.o.d"
  "fig6_6_attack_drop20"
  "fig6_6_attack_drop20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_6_attack_drop20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
