# Empty dependencies file for fig6_2_confidence_curve.
# This may be replaced when dependencies are built.
