file(REMOVE_RECURSE
  "CMakeFiles/fig6_2_confidence_curve.dir/fig6_2_confidence_curve.cpp.o"
  "CMakeFiles/fig6_2_confidence_curve.dir/fig6_2_confidence_curve.cpp.o.d"
  "fig6_2_confidence_curve"
  "fig6_2_confidence_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_confidence_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
