file(REMOVE_RECURSE
  "CMakeFiles/tab5_1_state_overhead.dir/tab5_1_state_overhead.cpp.o"
  "CMakeFiles/tab5_1_state_overhead.dir/tab5_1_state_overhead.cpp.o.d"
  "tab5_1_state_overhead"
  "tab5_1_state_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_1_state_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
