# Empty dependencies file for tab5_1_state_overhead.
# This may be replaced when dependencies are built.
