# Empty dependencies file for tab6_1_chi_ablation.
# This may be replaced when dependencies are built.
