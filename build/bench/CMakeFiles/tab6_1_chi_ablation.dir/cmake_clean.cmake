file(REMOVE_RECURSE
  "CMakeFiles/tab6_1_chi_ablation.dir/tab6_1_chi_ablation.cpp.o"
  "CMakeFiles/tab6_1_chi_ablation.dir/tab6_1_chi_ablation.cpp.o.d"
  "tab6_1_chi_ablation"
  "tab6_1_chi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_1_chi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
