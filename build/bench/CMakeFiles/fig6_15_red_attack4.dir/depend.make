# Empty dependencies file for fig6_15_red_attack4.
# This may be replaced when dependencies are built.
