file(REMOVE_RECURSE
  "CMakeFiles/fig6_15_red_attack4.dir/fig6_15_red_attack4.cpp.o"
  "CMakeFiles/fig6_15_red_attack4.dir/fig6_15_red_attack4.cpp.o.d"
  "fig6_15_red_attack4"
  "fig6_15_red_attack4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_15_red_attack4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
