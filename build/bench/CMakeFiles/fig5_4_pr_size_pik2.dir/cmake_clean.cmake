file(REMOVE_RECURSE
  "CMakeFiles/fig5_4_pr_size_pik2.dir/fig5_4_pr_size_pik2.cpp.o"
  "CMakeFiles/fig5_4_pr_size_pik2.dir/fig5_4_pr_size_pik2.cpp.o.d"
  "fig5_4_pr_size_pik2"
  "fig5_4_pr_size_pik2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4_pr_size_pik2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
