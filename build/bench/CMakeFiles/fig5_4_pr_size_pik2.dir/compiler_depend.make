# Empty compiler generated dependencies file for fig5_4_pr_size_pik2.
# This may be replaced when dependencies are built.
