file(REMOVE_RECURSE
  "CMakeFiles/tab7_1_fingerprint_cost.dir/tab7_1_fingerprint_cost.cpp.o"
  "CMakeFiles/tab7_1_fingerprint_cost.dir/tab7_1_fingerprint_cost.cpp.o.d"
  "tab7_1_fingerprint_cost"
  "tab7_1_fingerprint_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_1_fingerprint_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
