# Empty compiler generated dependencies file for tab7_1_fingerprint_cost.
# This may be replaced when dependencies are built.
