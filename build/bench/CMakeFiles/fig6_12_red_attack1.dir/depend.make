# Empty dependencies file for fig6_12_red_attack1.
# This may be replaced when dependencies are built.
