file(REMOVE_RECURSE
  "CMakeFiles/fig6_12_red_attack1.dir/fig6_12_red_attack1.cpp.o"
  "CMakeFiles/fig6_12_red_attack1.dir/fig6_12_red_attack1.cpp.o.d"
  "fig6_12_red_attack1"
  "fig6_12_red_attack1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_12_red_attack1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
