file(REMOVE_RECURSE
  "CMakeFiles/fig6_11_red_no_attack.dir/fig6_11_red_no_attack.cpp.o"
  "CMakeFiles/fig6_11_red_no_attack.dir/fig6_11_red_no_attack.cpp.o.d"
  "fig6_11_red_no_attack"
  "fig6_11_red_no_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_11_red_no_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
