# Empty dependencies file for fig6_11_red_no_attack.
# This may be replaced when dependencies are built.
