# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_11_red_no_attack.
