# Empty compiler generated dependencies file for fig5_7_fatih_timeline.
# This may be replaced when dependencies are built.
