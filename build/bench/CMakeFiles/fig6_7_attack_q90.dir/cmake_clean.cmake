file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_attack_q90.dir/fig6_7_attack_q90.cpp.o"
  "CMakeFiles/fig6_7_attack_q90.dir/fig6_7_attack_q90.cpp.o.d"
  "fig6_7_attack_q90"
  "fig6_7_attack_q90.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_attack_q90.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
