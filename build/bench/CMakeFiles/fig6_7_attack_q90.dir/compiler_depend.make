# Empty compiler generated dependencies file for fig6_7_attack_q90.
# This may be replaced when dependencies are built.
