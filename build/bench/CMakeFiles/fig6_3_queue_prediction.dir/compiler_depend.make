# Empty compiler generated dependencies file for fig6_3_queue_prediction.
# This may be replaced when dependencies are built.
