file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_queue_prediction.dir/fig6_3_queue_prediction.cpp.o"
  "CMakeFiles/fig6_3_queue_prediction.dir/fig6_3_queue_prediction.cpp.o.d"
  "fig6_3_queue_prediction"
  "fig6_3_queue_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_queue_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
