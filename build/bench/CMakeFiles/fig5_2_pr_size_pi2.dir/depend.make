# Empty dependencies file for fig5_2_pr_size_pi2.
# This may be replaced when dependencies are built.
