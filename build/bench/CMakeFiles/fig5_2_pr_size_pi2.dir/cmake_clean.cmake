file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_pr_size_pi2.dir/fig5_2_pr_size_pi2.cpp.o"
  "CMakeFiles/fig5_2_pr_size_pi2.dir/fig5_2_pr_size_pi2.cpp.o.d"
  "fig5_2_pr_size_pi2"
  "fig5_2_pr_size_pi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_pr_size_pi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
