file(REMOVE_RECURSE
  "CMakeFiles/fig6_9_attack_syn.dir/fig6_9_attack_syn.cpp.o"
  "CMakeFiles/fig6_9_attack_syn.dir/fig6_9_attack_syn.cpp.o.d"
  "fig6_9_attack_syn"
  "fig6_9_attack_syn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_9_attack_syn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
