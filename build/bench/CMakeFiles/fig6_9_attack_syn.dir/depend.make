# Empty dependencies file for fig6_9_attack_syn.
# This may be replaced when dependencies are built.
