file(REMOVE_RECURSE
  "CMakeFiles/fig6_8_attack_q95.dir/fig6_8_attack_q95.cpp.o"
  "CMakeFiles/fig6_8_attack_q95.dir/fig6_8_attack_q95.cpp.o.d"
  "fig6_8_attack_q95"
  "fig6_8_attack_q95.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_8_attack_q95.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
