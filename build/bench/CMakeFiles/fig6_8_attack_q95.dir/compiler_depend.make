# Empty compiler generated dependencies file for fig6_8_attack_q95.
# This may be replaced when dependencies are built.
