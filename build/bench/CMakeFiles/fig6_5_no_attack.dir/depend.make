# Empty dependencies file for fig6_5_no_attack.
# This may be replaced when dependencies are built.
