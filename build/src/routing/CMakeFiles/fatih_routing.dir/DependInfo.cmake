
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/disjoint.cpp" "src/routing/CMakeFiles/fatih_routing.dir/disjoint.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/disjoint.cpp.o.d"
  "/root/repo/src/routing/graph.cpp" "src/routing/CMakeFiles/fatih_routing.dir/graph.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/graph.cpp.o.d"
  "/root/repo/src/routing/install.cpp" "src/routing/CMakeFiles/fatih_routing.dir/install.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/install.cpp.o.d"
  "/root/repo/src/routing/link_state.cpp" "src/routing/CMakeFiles/fatih_routing.dir/link_state.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/link_state.cpp.o.d"
  "/root/repo/src/routing/segments.cpp" "src/routing/CMakeFiles/fatih_routing.dir/segments.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/segments.cpp.o.d"
  "/root/repo/src/routing/spf.cpp" "src/routing/CMakeFiles/fatih_routing.dir/spf.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/spf.cpp.o.d"
  "/root/repo/src/routing/topologies.cpp" "src/routing/CMakeFiles/fatih_routing.dir/topologies.cpp.o" "gcc" "src/routing/CMakeFiles/fatih_routing.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fatih_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fatih_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fatih_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
