# Empty compiler generated dependencies file for fatih_routing.
# This may be replaced when dependencies are built.
