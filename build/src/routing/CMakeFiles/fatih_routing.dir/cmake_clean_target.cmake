file(REMOVE_RECURSE
  "libfatih_routing.a"
)
