file(REMOVE_RECURSE
  "CMakeFiles/fatih_routing.dir/disjoint.cpp.o"
  "CMakeFiles/fatih_routing.dir/disjoint.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/graph.cpp.o"
  "CMakeFiles/fatih_routing.dir/graph.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/install.cpp.o"
  "CMakeFiles/fatih_routing.dir/install.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/link_state.cpp.o"
  "CMakeFiles/fatih_routing.dir/link_state.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/segments.cpp.o"
  "CMakeFiles/fatih_routing.dir/segments.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/spf.cpp.o"
  "CMakeFiles/fatih_routing.dir/spf.cpp.o.d"
  "CMakeFiles/fatih_routing.dir/topologies.cpp.o"
  "CMakeFiles/fatih_routing.dir/topologies.cpp.o.d"
  "libfatih_routing.a"
  "libfatih_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
