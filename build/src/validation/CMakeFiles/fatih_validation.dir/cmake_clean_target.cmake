file(REMOVE_RECURSE
  "libfatih_validation.a"
)
