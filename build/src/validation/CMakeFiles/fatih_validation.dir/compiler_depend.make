# Empty compiler generated dependencies file for fatih_validation.
# This may be replaced when dependencies are built.
