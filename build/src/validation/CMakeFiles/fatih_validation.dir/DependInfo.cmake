
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/bloom.cpp" "src/validation/CMakeFiles/fatih_validation.dir/bloom.cpp.o" "gcc" "src/validation/CMakeFiles/fatih_validation.dir/bloom.cpp.o.d"
  "/root/repo/src/validation/fingerprint.cpp" "src/validation/CMakeFiles/fatih_validation.dir/fingerprint.cpp.o" "gcc" "src/validation/CMakeFiles/fatih_validation.dir/fingerprint.cpp.o.d"
  "/root/repo/src/validation/reconcile.cpp" "src/validation/CMakeFiles/fatih_validation.dir/reconcile.cpp.o" "gcc" "src/validation/CMakeFiles/fatih_validation.dir/reconcile.cpp.o.d"
  "/root/repo/src/validation/summary.cpp" "src/validation/CMakeFiles/fatih_validation.dir/summary.cpp.o" "gcc" "src/validation/CMakeFiles/fatih_validation.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fatih_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fatih_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fatih_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
