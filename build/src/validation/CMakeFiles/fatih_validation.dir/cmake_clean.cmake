file(REMOVE_RECURSE
  "CMakeFiles/fatih_validation.dir/bloom.cpp.o"
  "CMakeFiles/fatih_validation.dir/bloom.cpp.o.d"
  "CMakeFiles/fatih_validation.dir/fingerprint.cpp.o"
  "CMakeFiles/fatih_validation.dir/fingerprint.cpp.o.d"
  "CMakeFiles/fatih_validation.dir/reconcile.cpp.o"
  "CMakeFiles/fatih_validation.dir/reconcile.cpp.o.d"
  "CMakeFiles/fatih_validation.dir/summary.cpp.o"
  "CMakeFiles/fatih_validation.dir/summary.cpp.o.d"
  "libfatih_validation.a"
  "libfatih_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
