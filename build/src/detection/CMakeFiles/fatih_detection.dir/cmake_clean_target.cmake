file(REMOVE_RECURSE
  "libfatih_detection.a"
)
