# Empty compiler generated dependencies file for fatih_detection.
# This may be replaced when dependencies are built.
