
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/chi.cpp" "src/detection/CMakeFiles/fatih_detection.dir/chi.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/chi.cpp.o.d"
  "/root/repo/src/detection/flood.cpp" "src/detection/CMakeFiles/fatih_detection.dir/flood.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/flood.cpp.o.d"
  "/root/repo/src/detection/herzberg.cpp" "src/detection/CMakeFiles/fatih_detection.dir/herzberg.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/herzberg.cpp.o.d"
  "/root/repo/src/detection/hser.cpp" "src/detection/CMakeFiles/fatih_detection.dir/hser.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/hser.cpp.o.d"
  "/root/repo/src/detection/messages.cpp" "src/detection/CMakeFiles/fatih_detection.dir/messages.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/messages.cpp.o.d"
  "/root/repo/src/detection/perlman.cpp" "src/detection/CMakeFiles/fatih_detection.dir/perlman.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/perlman.cpp.o.d"
  "/root/repo/src/detection/pi2.cpp" "src/detection/CMakeFiles/fatih_detection.dir/pi2.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/pi2.cpp.o.d"
  "/root/repo/src/detection/pik2.cpp" "src/detection/CMakeFiles/fatih_detection.dir/pik2.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/pik2.cpp.o.d"
  "/root/repo/src/detection/sectrace.cpp" "src/detection/CMakeFiles/fatih_detection.dir/sectrace.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/sectrace.cpp.o.d"
  "/root/repo/src/detection/spec.cpp" "src/detection/CMakeFiles/fatih_detection.dir/spec.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/spec.cpp.o.d"
  "/root/repo/src/detection/summary_gen.cpp" "src/detection/CMakeFiles/fatih_detection.dir/summary_gen.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/summary_gen.cpp.o.d"
  "/root/repo/src/detection/threshold.cpp" "src/detection/CMakeFiles/fatih_detection.dir/threshold.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/threshold.cpp.o.d"
  "/root/repo/src/detection/tv.cpp" "src/detection/CMakeFiles/fatih_detection.dir/tv.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/tv.cpp.o.d"
  "/root/repo/src/detection/types.cpp" "src/detection/CMakeFiles/fatih_detection.dir/types.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/types.cpp.o.d"
  "/root/repo/src/detection/watchers.cpp" "src/detection/CMakeFiles/fatih_detection.dir/watchers.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/watchers.cpp.o.d"
  "/root/repo/src/detection/zhang.cpp" "src/detection/CMakeFiles/fatih_detection.dir/zhang.cpp.o" "gcc" "src/detection/CMakeFiles/fatih_detection.dir/zhang.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fatih_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fatih_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fatih_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fatih_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/fatih_validation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
