# Empty compiler generated dependencies file for fatih_system.
# This may be replaced when dependencies are built.
