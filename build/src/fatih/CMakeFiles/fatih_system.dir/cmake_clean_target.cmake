file(REMOVE_RECURSE
  "libfatih_system.a"
)
