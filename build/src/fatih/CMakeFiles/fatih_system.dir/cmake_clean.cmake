file(REMOVE_RECURSE
  "CMakeFiles/fatih_system.dir/fatih.cpp.o"
  "CMakeFiles/fatih_system.dir/fatih.cpp.o.d"
  "libfatih_system.a"
  "libfatih_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
