# Empty compiler generated dependencies file for fatih_crypto.
# This may be replaced when dependencies are built.
