file(REMOVE_RECURSE
  "libfatih_crypto.a"
)
