file(REMOVE_RECURSE
  "CMakeFiles/fatih_crypto.dir/hash_chain.cpp.o"
  "CMakeFiles/fatih_crypto.dir/hash_chain.cpp.o.d"
  "CMakeFiles/fatih_crypto.dir/keys.cpp.o"
  "CMakeFiles/fatih_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/fatih_crypto.dir/mac.cpp.o"
  "CMakeFiles/fatih_crypto.dir/mac.cpp.o.d"
  "CMakeFiles/fatih_crypto.dir/siphash.cpp.o"
  "CMakeFiles/fatih_crypto.dir/siphash.cpp.o.d"
  "libfatih_crypto.a"
  "libfatih_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
