# Empty dependencies file for fatih_attacks.
# This may be replaced when dependencies are built.
