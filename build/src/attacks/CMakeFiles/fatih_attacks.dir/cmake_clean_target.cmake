file(REMOVE_RECURSE
  "libfatih_attacks.a"
)
