file(REMOVE_RECURSE
  "CMakeFiles/fatih_attacks.dir/attacks.cpp.o"
  "CMakeFiles/fatih_attacks.dir/attacks.cpp.o.d"
  "libfatih_attacks.a"
  "libfatih_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
