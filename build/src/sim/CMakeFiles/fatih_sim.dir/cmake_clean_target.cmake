file(REMOVE_RECURSE
  "libfatih_sim.a"
)
