
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/fatih_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/fatih_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/sim/CMakeFiles/fatih_sim.dir/packet.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/packet.cpp.o.d"
  "/root/repo/src/sim/queue.cpp" "src/sim/CMakeFiles/fatih_sim.dir/queue.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/queue.cpp.o.d"
  "/root/repo/src/sim/red.cpp" "src/sim/CMakeFiles/fatih_sim.dir/red.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/red.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/fatih_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fatih_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fatih_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
