# Empty compiler generated dependencies file for fatih_sim.
# This may be replaced when dependencies are built.
