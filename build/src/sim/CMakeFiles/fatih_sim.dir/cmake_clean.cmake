file(REMOVE_RECURSE
  "CMakeFiles/fatih_sim.dir/network.cpp.o"
  "CMakeFiles/fatih_sim.dir/network.cpp.o.d"
  "CMakeFiles/fatih_sim.dir/node.cpp.o"
  "CMakeFiles/fatih_sim.dir/node.cpp.o.d"
  "CMakeFiles/fatih_sim.dir/packet.cpp.o"
  "CMakeFiles/fatih_sim.dir/packet.cpp.o.d"
  "CMakeFiles/fatih_sim.dir/queue.cpp.o"
  "CMakeFiles/fatih_sim.dir/queue.cpp.o.d"
  "CMakeFiles/fatih_sim.dir/red.cpp.o"
  "CMakeFiles/fatih_sim.dir/red.cpp.o.d"
  "CMakeFiles/fatih_sim.dir/simulator.cpp.o"
  "CMakeFiles/fatih_sim.dir/simulator.cpp.o.d"
  "libfatih_sim.a"
  "libfatih_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
