file(REMOVE_RECURSE
  "CMakeFiles/fatih_util.dir/log.cpp.o"
  "CMakeFiles/fatih_util.dir/log.cpp.o.d"
  "CMakeFiles/fatih_util.dir/rng.cpp.o"
  "CMakeFiles/fatih_util.dir/rng.cpp.o.d"
  "CMakeFiles/fatih_util.dir/stats.cpp.o"
  "CMakeFiles/fatih_util.dir/stats.cpp.o.d"
  "CMakeFiles/fatih_util.dir/time.cpp.o"
  "CMakeFiles/fatih_util.dir/time.cpp.o.d"
  "libfatih_util.a"
  "libfatih_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
