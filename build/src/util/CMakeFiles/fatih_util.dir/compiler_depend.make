# Empty compiler generated dependencies file for fatih_util.
# This may be replaced when dependencies are built.
