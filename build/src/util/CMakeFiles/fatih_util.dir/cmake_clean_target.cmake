file(REMOVE_RECURSE
  "libfatih_util.a"
)
