# Empty compiler generated dependencies file for fatih_traffic.
# This may be replaced when dependencies are built.
