file(REMOVE_RECURSE
  "libfatih_traffic.a"
)
