file(REMOVE_RECURSE
  "CMakeFiles/fatih_traffic.dir/sources.cpp.o"
  "CMakeFiles/fatih_traffic.dir/sources.cpp.o.d"
  "CMakeFiles/fatih_traffic.dir/tcp.cpp.o"
  "CMakeFiles/fatih_traffic.dir/tcp.cpp.o.d"
  "libfatih_traffic.a"
  "libfatih_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
