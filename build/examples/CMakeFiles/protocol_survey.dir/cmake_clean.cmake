file(REMOVE_RECURSE
  "CMakeFiles/protocol_survey.dir/protocol_survey.cpp.o"
  "CMakeFiles/protocol_survey.dir/protocol_survey.cpp.o.d"
  "protocol_survey"
  "protocol_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
