# Empty compiler generated dependencies file for protocol_survey.
# This may be replaced when dependencies are built.
