file(REMOVE_RECURSE
  "CMakeFiles/watchers_consorting.dir/watchers_consorting.cpp.o"
  "CMakeFiles/watchers_consorting.dir/watchers_consorting.cpp.o.d"
  "watchers_consorting"
  "watchers_consorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchers_consorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
