# Empty dependencies file for watchers_consorting.
# This may be replaced when dependencies are built.
