file(REMOVE_RECURSE
  "CMakeFiles/fatih_abilene.dir/fatih_abilene.cpp.o"
  "CMakeFiles/fatih_abilene.dir/fatih_abilene.cpp.o.d"
  "fatih_abilene"
  "fatih_abilene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_abilene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
