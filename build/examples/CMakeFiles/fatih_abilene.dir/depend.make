# Empty dependencies file for fatih_abilene.
# This may be replaced when dependencies are built.
