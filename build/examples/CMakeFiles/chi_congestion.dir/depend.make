# Empty dependencies file for chi_congestion.
# This may be replaced when dependencies are built.
