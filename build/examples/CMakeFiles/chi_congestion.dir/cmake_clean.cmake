file(REMOVE_RECURSE
  "CMakeFiles/chi_congestion.dir/chi_congestion.cpp.o"
  "CMakeFiles/chi_congestion.dir/chi_congestion.cpp.o.d"
  "chi_congestion"
  "chi_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chi_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
