file(REMOVE_RECURSE
  "CMakeFiles/watchers_test.dir/detection/watchers_test.cpp.o"
  "CMakeFiles/watchers_test.dir/detection/watchers_test.cpp.o.d"
  "watchers_test"
  "watchers_test.pdb"
  "watchers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
