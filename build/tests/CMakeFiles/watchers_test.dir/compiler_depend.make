# Empty compiler generated dependencies file for watchers_test.
# This may be replaced when dependencies are built.
