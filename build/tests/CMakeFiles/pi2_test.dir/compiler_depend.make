# Empty compiler generated dependencies file for pi2_test.
# This may be replaced when dependencies are built.
