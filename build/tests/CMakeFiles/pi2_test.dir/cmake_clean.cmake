file(REMOVE_RECURSE
  "CMakeFiles/pi2_test.dir/detection/pi2_test.cpp.o"
  "CMakeFiles/pi2_test.dir/detection/pi2_test.cpp.o.d"
  "pi2_test"
  "pi2_test.pdb"
  "pi2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
