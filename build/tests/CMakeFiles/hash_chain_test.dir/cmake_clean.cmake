file(REMOVE_RECURSE
  "CMakeFiles/hash_chain_test.dir/crypto/hash_chain_test.cpp.o"
  "CMakeFiles/hash_chain_test.dir/crypto/hash_chain_test.cpp.o.d"
  "hash_chain_test"
  "hash_chain_test.pdb"
  "hash_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
