file(REMOVE_RECURSE
  "CMakeFiles/link_state_test.dir/routing/link_state_test.cpp.o"
  "CMakeFiles/link_state_test.dir/routing/link_state_test.cpp.o.d"
  "link_state_test"
  "link_state_test.pdb"
  "link_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
