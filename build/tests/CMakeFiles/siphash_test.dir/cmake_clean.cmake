file(REMOVE_RECURSE
  "CMakeFiles/siphash_test.dir/crypto/siphash_test.cpp.o"
  "CMakeFiles/siphash_test.dir/crypto/siphash_test.cpp.o.d"
  "siphash_test"
  "siphash_test.pdb"
  "siphash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
