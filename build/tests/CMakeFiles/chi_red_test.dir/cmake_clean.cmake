file(REMOVE_RECURSE
  "CMakeFiles/chi_red_test.dir/detection/chi_red_test.cpp.o"
  "CMakeFiles/chi_red_test.dir/detection/chi_red_test.cpp.o.d"
  "chi_red_test"
  "chi_red_test.pdb"
  "chi_red_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chi_red_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
