# Empty compiler generated dependencies file for chi_red_test.
# This may be replaced when dependencies are built.
