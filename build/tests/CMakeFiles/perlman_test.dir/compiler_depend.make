# Empty compiler generated dependencies file for perlman_test.
# This may be replaced when dependencies are built.
