file(REMOVE_RECURSE
  "CMakeFiles/perlman_test.dir/detection/perlman_test.cpp.o"
  "CMakeFiles/perlman_test.dir/detection/perlman_test.cpp.o.d"
  "perlman_test"
  "perlman_test.pdb"
  "perlman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perlman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
