file(REMOVE_RECURSE
  "CMakeFiles/herzberg_test.dir/detection/herzberg_test.cpp.o"
  "CMakeFiles/herzberg_test.dir/detection/herzberg_test.cpp.o.d"
  "herzberg_test"
  "herzberg_test.pdb"
  "herzberg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herzberg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
