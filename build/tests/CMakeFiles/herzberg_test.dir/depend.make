# Empty dependencies file for herzberg_test.
# This may be replaced when dependencies are built.
