file(REMOVE_RECURSE
  "CMakeFiles/sectrace_test.dir/detection/sectrace_test.cpp.o"
  "CMakeFiles/sectrace_test.dir/detection/sectrace_test.cpp.o.d"
  "sectrace_test"
  "sectrace_test.pdb"
  "sectrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sectrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
