# Empty compiler generated dependencies file for sectrace_test.
# This may be replaced when dependencies are built.
