# Empty dependencies file for pik2_test.
# This may be replaced when dependencies are built.
