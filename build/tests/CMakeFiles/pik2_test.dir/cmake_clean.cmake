file(REMOVE_RECURSE
  "CMakeFiles/pik2_test.dir/detection/pik2_test.cpp.o"
  "CMakeFiles/pik2_test.dir/detection/pik2_test.cpp.o.d"
  "pik2_test"
  "pik2_test.pdb"
  "pik2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pik2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
