file(REMOVE_RECURSE
  "CMakeFiles/topologies_test.dir/routing/topologies_test.cpp.o"
  "CMakeFiles/topologies_test.dir/routing/topologies_test.cpp.o.d"
  "topologies_test"
  "topologies_test.pdb"
  "topologies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topologies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
