file(REMOVE_RECURSE
  "CMakeFiles/summary_gen_test.dir/detection/summary_gen_test.cpp.o"
  "CMakeFiles/summary_gen_test.dir/detection/summary_gen_test.cpp.o.d"
  "summary_gen_test"
  "summary_gen_test.pdb"
  "summary_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
