# Empty compiler generated dependencies file for summary_gen_test.
# This may be replaced when dependencies are built.
