file(REMOVE_RECURSE
  "CMakeFiles/reconcile_test.dir/validation/reconcile_test.cpp.o"
  "CMakeFiles/reconcile_test.dir/validation/reconcile_test.cpp.o.d"
  "reconcile_test"
  "reconcile_test.pdb"
  "reconcile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
