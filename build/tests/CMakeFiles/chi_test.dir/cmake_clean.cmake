file(REMOVE_RECURSE
  "CMakeFiles/chi_test.dir/detection/chi_test.cpp.o"
  "CMakeFiles/chi_test.dir/detection/chi_test.cpp.o.d"
  "chi_test"
  "chi_test.pdb"
  "chi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
