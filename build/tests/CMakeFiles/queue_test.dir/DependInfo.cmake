
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/queue_test.cpp" "tests/CMakeFiles/queue_test.dir/sim/queue_test.cpp.o" "gcc" "tests/CMakeFiles/queue_test.dir/sim/queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fatih_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fatih_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fatih_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fatih_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/fatih_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/fatih_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/detection/CMakeFiles/fatih_detection.dir/DependInfo.cmake"
  "/root/repo/build/src/fatih/CMakeFiles/fatih_system.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/fatih_attacks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
