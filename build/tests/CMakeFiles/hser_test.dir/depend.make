# Empty dependencies file for hser_test.
# This may be replaced when dependencies are built.
