file(REMOVE_RECURSE
  "CMakeFiles/hser_test.dir/detection/hser_test.cpp.o"
  "CMakeFiles/hser_test.dir/detection/hser_test.cpp.o.d"
  "hser_test"
  "hser_test.pdb"
  "hser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
