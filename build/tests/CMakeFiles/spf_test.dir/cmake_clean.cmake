file(REMOVE_RECURSE
  "CMakeFiles/spf_test.dir/routing/spf_test.cpp.o"
  "CMakeFiles/spf_test.dir/routing/spf_test.cpp.o.d"
  "spf_test"
  "spf_test.pdb"
  "spf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
