# Empty compiler generated dependencies file for spf_test.
# This may be replaced when dependencies are built.
