# Empty compiler generated dependencies file for red_test.
# This may be replaced when dependencies are built.
