# Empty compiler generated dependencies file for zhang_test.
# This may be replaced when dependencies are built.
