file(REMOVE_RECURSE
  "CMakeFiles/zhang_test.dir/detection/zhang_test.cpp.o"
  "CMakeFiles/zhang_test.dir/detection/zhang_test.cpp.o.d"
  "zhang_test"
  "zhang_test.pdb"
  "zhang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
