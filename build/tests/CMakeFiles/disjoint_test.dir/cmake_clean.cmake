file(REMOVE_RECURSE
  "CMakeFiles/disjoint_test.dir/routing/disjoint_test.cpp.o"
  "CMakeFiles/disjoint_test.dir/routing/disjoint_test.cpp.o.d"
  "disjoint_test"
  "disjoint_test.pdb"
  "disjoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
