# Empty dependencies file for disjoint_test.
# This may be replaced when dependencies are built.
