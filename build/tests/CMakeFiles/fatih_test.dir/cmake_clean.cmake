file(REMOVE_RECURSE
  "CMakeFiles/fatih_test.dir/fatih/fatih_test.cpp.o"
  "CMakeFiles/fatih_test.dir/fatih/fatih_test.cpp.o.d"
  "fatih_test"
  "fatih_test.pdb"
  "fatih_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatih_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
