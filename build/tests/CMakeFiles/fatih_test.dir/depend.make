# Empty dependencies file for fatih_test.
# This may be replaced when dependencies are built.
